//! The hierarchical watermarking scheme (Fig. 9 of the paper).
//!
//! **Embedding**: for every keyed-selected tuple and every watermarked
//! column, locate the value's ultimate generalization node, climb to its
//! maximal generalization node, then walk back down, at each level choosing
//! the child whose index parity (within the sorted sibling set) encodes the
//! mark bit assigned to this tuple, until an ultimate generalization node is
//! reached. The same bit is thus written into *every* level between the
//! maximal and the ultimate nodes, which is what defeats the generalization
//! attack: an attacker who re-generalizes the data destroys only the lowest
//! copies.
//!
//! **Detection**: for every selected tuple and column, locate the value's
//! node, and walk up towards its maximal generalization node, reading the
//! parity of the node's index within its sibling set at each level. The
//! copies from the levels are combined by (optionally level-weighted)
//! majority voting into one vote for the tuple's bit position; the votes per
//! position are majority-combined into the extended mark `wmd`; the
//! replicated copies inside `wmd` are folded by majority into the final mark.

use crate::error::WatermarkError;
use crate::kernel::{hierarchical_cell_vote, DetectKernel, EmbedKernel, EmbedStyle};
use crate::key::{Mark, WatermarkConfig};
use crate::plan::{DetectPlan, EmbedPlan};
use crate::voting::VoteAccumulator;
use medshield_binning::{BinningOutcome, ColumnBinning};
use medshield_dht::{DomainHierarchyTree, GeneralizationSet, NodeId};
use medshield_relation::Table;
use std::collections::BTreeMap;

/// Statistics of an embedding run (or of one row chunk of a run; chunk
/// reports combine with [`EmbeddingReport::merge`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddingReport {
    /// Number of tuples selected by Eq. (5).
    pub selected_tuples: usize,
    /// Number of (tuple, column) cells where a bit was embedded.
    pub embedded_cells: usize,
    /// Number of cells whose value actually changed.
    pub changed_cells: usize,
    /// Number of cells skipped because the maximal and ultimate nodes
    /// coincide (no bandwidth at that cell).
    pub skipped_cells: usize,
    /// Length of the extended (duplicated) mark `wmd`.
    pub wmd_len: usize,
}

impl EmbeddingReport {
    /// An all-zero report for a run with the given extended-mark length.
    pub fn empty(wmd_len: usize) -> Self {
        EmbeddingReport {
            selected_tuples: 0,
            embedded_cells: 0,
            changed_cells: 0,
            skipped_cells: 0,
            wmd_len,
        }
    }

    /// Fold another chunk's counters into this report. All counters are
    /// plain sums, so merging chunk reports in any order yields exactly the
    /// sequential run's report.
    pub fn merge(&mut self, other: &EmbeddingReport) {
        debug_assert_eq!(self.wmd_len, other.wmd_len, "reports from different runs");
        self.selected_tuples += other.selected_tuples;
        self.embedded_cells += other.embedded_cells;
        self.changed_cells += other.changed_cells;
        self.skipped_cells += other.skipped_cells;
    }
}

/// Result of a detection run.
///
/// A finished report carries the *resolved* mark, which cannot be merged
/// losslessly; the mergeable intermediate is [`DetectionTally`], which keeps
/// the raw per-position votes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionReport {
    /// The recovered mark bits (length = the configured mark length).
    pub mark: Vec<bool>,
    /// Number of `wmd` positions that received at least one vote.
    pub covered_positions: usize,
    /// Length of the extended mark.
    pub wmd_len: usize,
    /// Number of tuples selected by Eq. (5) during detection.
    pub selected_tuples: usize,
}

impl DetectionReport {
    /// The recovered mark as a [`Mark`].
    pub fn as_mark(&self) -> Mark {
        Mark::from_bits(self.mark.clone())
    }
}

/// The mergeable intermediate of a detection run: per-position vote totals
/// plus the selected-tuple count of the rows scanned so far. One tally per
/// row chunk, merged in any order, resolves to exactly the sequential
/// [`DetectionReport`] (vote weights are small integral counts, so the
/// floating-point sums are exact).
#[derive(Debug, Clone)]
pub struct DetectionTally {
    votes: VoteAccumulator,
    selected_tuples: usize,
}

impl DetectionTally {
    /// An empty tally for an extended mark of `wmd_len` positions.
    pub fn new(wmd_len: usize) -> Self {
        DetectionTally { votes: VoteAccumulator::new(wmd_len), selected_tuples: 0 }
    }

    /// Fold another chunk's votes and counters into this tally.
    pub fn merge(&mut self, other: &DetectionTally) {
        self.votes.merge(&other.votes);
        self.selected_tuples += other.selected_tuples;
    }

    /// Count one tuple as selected by Eq. (5).
    pub fn note_selected(&mut self) {
        self.selected_tuples += 1;
    }

    /// Record a vote of weight `weight` for extended-mark position `pos`.
    /// Out-of-range positions and unusable weights are contract violations
    /// (see [`VoteAccumulator::vote`]), not silently dropped votes.
    pub fn vote(&mut self, pos: usize, bit: bool, weight: f64) -> Result<(), WatermarkError> {
        self.votes.vote(pos, bit, weight).map_err(WatermarkError::from)
    }

    /// Number of tuples selected by Eq. (5) in the scanned rows.
    pub fn selected_tuples(&self) -> usize {
        self.selected_tuples
    }

    /// Resolve the accumulated votes into a final report for a mark of
    /// `mark_len` bits.
    pub fn into_report(self, mark_len: usize) -> DetectionReport {
        let wmd = self.votes.resolve();
        DetectionReport {
            mark: Mark::fold_majority(&wmd, mark_len),
            covered_positions: self.votes.covered_positions(),
            wmd_len: wmd.len(),
            selected_tuples: self.selected_tuples,
        }
    }
}

/// The hierarchical watermarking agent.
#[derive(Debug, Clone)]
pub struct HierarchicalWatermarker {
    config: WatermarkConfig,
}

impl HierarchicalWatermarker {
    /// Create an agent from a configuration.
    pub fn new(config: WatermarkConfig) -> Self {
        HierarchicalWatermarker { config }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &WatermarkConfig {
        &self.config
    }

    /// Precompute the run-wide embedding state (selector, resolved identity,
    /// extended mark, target columns) for `schema`. The plan is immutable and
    /// can be shared by workers embedding disjoint row chunks.
    pub fn plan_embed<'a>(
        &self,
        schema: &medshield_relation::Schema,
        binning_columns: &'a [ColumnBinning],
        trees: &'a BTreeMap<String, DomainHierarchyTree>,
        mark: &Mark,
    ) -> Result<EmbedPlan<'a>, WatermarkError> {
        EmbedPlan::build(&self.config, schema, binning_columns, trees, mark)
    }

    /// Prepare the columnar embedding kernel for `plan` against `table`:
    /// promote the target columns to dictionary encoding, intern every
    /// ultimate node's value, and memoize the per-distinct-value tree
    /// resolution. The kernel is immutable; workers call
    /// [`EmbedKernel::run_range`] over disjoint row ranges of the shared
    /// table and the caller writes the resulting edit lists back with
    /// [`EmbedKernel::apply`].
    pub fn prepare_embed(
        &self,
        plan: &EmbedPlan<'_>,
        table: &mut Table,
    ) -> Result<EmbedKernel, WatermarkError> {
        EmbedKernel::prepare(plan, table, EmbedStyle::Hierarchical)
    }

    /// `Embedding(tbl, tr, maxgends, ultigends, k1, k2, η, wm)`: watermark the
    /// binned table, returning the watermarked table and a report.
    pub fn embed(
        &self,
        binned: &BinningOutcome,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        mark: &Mark,
    ) -> Result<(Table, EmbeddingReport), WatermarkError> {
        self.embed_into(&binned.table, &binned.columns, trees, mark)
    }

    /// Embed into an arbitrary binned table given its per-column binning
    /// state. This is what an adversary mounting the additive ownership
    /// attack would call (he only holds the released table, not the binning
    /// outcome), and it is also useful for re-marking data received from a
    /// third party.
    pub fn embed_into(
        &self,
        binned_table: &Table,
        binning_columns: &[ColumnBinning],
        trees: &BTreeMap<String, DomainHierarchyTree>,
        mark: &Mark,
    ) -> Result<(Table, EmbeddingReport), WatermarkError> {
        let plan = self.plan_embed(binned_table.schema(), binning_columns, trees, mark)?;
        let mut table = binned_table.snapshot();
        let kernel = self.prepare_embed(&plan, &mut table)?;
        let chunk = kernel.run_range(&plan, &table, 0..table.len())?;
        let report = kernel.apply(&plan, &mut table, vec![chunk])?;
        Ok((table, report))
    }

    /// Precompute the run-wide detection state for `schema`. Columns the
    /// (attacked) table no longer carries are tolerated: missing target
    /// columns are skipped, and missing virtual-key columns yield a plan
    /// whose runs collect zero votes — detection degrades to "no watermark
    /// found" rather than failing. The plan is immutable and can be shared
    /// by workers scanning disjoint row chunks.
    pub fn plan_detect<'a>(
        &self,
        schema: &medshield_relation::Schema,
        columns: &'a [ColumnBinning],
        trees: &'a BTreeMap<String, DomainHierarchyTree>,
        mark_len: usize,
    ) -> Result<DetectPlan<'a>, WatermarkError> {
        DetectPlan::build(&self.config, schema, columns, trees, mark_len)
    }

    /// Prepare the columnar detection kernel for `plan` against `table`:
    /// memoize each distinct cell value's climb-and-vote once, so the row
    /// loop is a code lookup plus one PRF per (selected tuple, column).
    /// Workers call [`DetectKernel::run_range`] over disjoint row ranges and
    /// merge the tallies.
    pub fn prepare_detect(
        &self,
        plan: &DetectPlan<'_>,
        table: &Table,
    ) -> Result<DetectKernel, WatermarkError> {
        let weighted = self.config.weighted_voting;
        DetectKernel::prepare(plan, table, move |pc, value| {
            hierarchical_cell_vote(pc, value, weighted)
        })
    }

    /// `Detection(tbl, tr, maxgends, ultigends, k1, k2, η)`: recover the mark
    /// from a (possibly attacked) table. `mark_len` is the length of the
    /// original mark `wm`.
    pub fn detect(
        &self,
        table: &Table,
        columns: &[ColumnBinning],
        trees: &BTreeMap<String, DomainHierarchyTree>,
        mark_len: usize,
    ) -> Result<DetectionReport, WatermarkError> {
        let plan = self.plan_detect(table.schema(), columns, trees, mark_len)?;
        let kernel = self.prepare_detect(&plan, table)?;
        let tally = kernel.run_range(&plan, table, 0..table.len())?;
        Ok(tally.into_report(mark_len))
    }
}

/// Walk up from `node` to its covering maximal generalization node, reading
/// the index parity at each level (bottom-up). Returns `None` when the node
/// is not covered by the maximal set (e.g. the attacker replaced the value by
/// something above the usage metrics), in which case no vote is cast.
pub(crate) fn climb_and_read(
    tree: &DomainHierarchyTree,
    maximal: &GeneralizationSet,
    node: NodeId,
) -> Result<Option<Vec<bool>>, WatermarkError> {
    if maximal.covering_node(tree, node).is_err() {
        return Ok(None);
    }
    let mut bits = Vec::new();
    let mut current = node;
    while !maximal.contains(current) {
        let siblings = tree.siblings(current).map_err(WatermarkError::Dht)?;
        // Singleton sibling sets carry no information, so they cast no vote.
        if siblings.len() > 1 {
            let Some(idx) = DomainHierarchyTree::index_in(current, &siblings) else {
                return Ok(Some(bits));
            };
            bits.push(idx % 2 == 1);
        }
        match tree.parent(current).map_err(WatermarkError::Dht)? {
            Some(p) => current = p,
            None => break,
        }
    }
    Ok(Some(bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::WatermarkKey;
    use medshield_binning::{BinningAgent, BinningConfig};
    use medshield_datagen::{DatasetConfig, MedicalDataset};
    use medshield_metrics::{mark_loss, satisfies_k_anonymity};

    fn binned_dataset(n: usize, k: usize) -> (MedicalDataset, BinningOutcome) {
        let ds = MedicalDataset::generate(&DatasetConfig::small(n));
        let agent = BinningAgent::new(BinningConfig::with_k(k));
        // Maximal generalization nodes given directly as the tree roots (the
        // paper's experimental simplification): the gap between the root and
        // the ultimate nodes is the watermark bandwidth channel.
        let maximal: BTreeMap<String, GeneralizationSet> = ds
            .trees
            .iter()
            .map(|(name, tree)| (name.clone(), GeneralizationSet::at_depth(tree, 0)))
            .collect();
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        (ds, outcome)
    }

    fn watermarker(eta: u64) -> (HierarchicalWatermarker, Mark) {
        let key = WatermarkKey::from_master(b"owner-secret", eta);
        let config = WatermarkConfig::new(key);
        (HierarchicalWatermarker::new(config), Mark::from_bytes(b"hospital-alpha", 20))
    }

    #[test]
    fn roundtrip_recovers_the_mark_exactly() {
        let (ds, binned) = binned_dataset(1200, 4);
        let (wm, mark) = watermarker(10);
        let (marked, report) = wm.embed(&binned, &ds.trees, &mark).unwrap();
        assert!(report.selected_tuples > 0);
        assert!(report.embedded_cells > 0);
        let detected = wm.detect(&marked, &binned.columns, &ds.trees, mark.len()).unwrap();
        assert_eq!(detected.mark, mark.bits(), "clean detection must be exact");
        assert_eq!(mark_loss(mark.bits(), &detected.mark), 0.0);
    }

    #[test]
    fn detection_with_wrong_key_fails_to_recover() {
        let (ds, binned) = binned_dataset(1000, 4);
        let (wm, mark) = watermarker(8);
        let (marked, _) = wm.embed(&binned, &ds.trees, &mark).unwrap();
        let wrong = HierarchicalWatermarker::new(WatermarkConfig::new(WatermarkKey::from_master(
            b"attacker-guess",
            8,
        )));
        let detected = wrong.detect(&marked, &binned.columns, &ds.trees, mark.len()).unwrap();
        let loss = mark_loss(mark.bits(), &detected.mark);
        assert!(loss > 0.2, "wrong key should not recover the mark (loss {loss})");
    }

    #[test]
    fn watermarking_preserves_per_attribute_k_anonymity_up_to_epsilon() {
        // The paper's seamlessness claim (§6, Fig. 14) is stated per
        // attribute: after watermarking, no attribute bin drops below k. Bin
        // with a k+ε margin and verify the per-attribute property at k.
        let ds = MedicalDataset::generate(&DatasetConfig::small(1500));
        let mut config = BinningConfig::with_k(4);
        config.spec = medshield_binning::KAnonymitySpec::with_epsilon(4, 4);
        let agent = BinningAgent::new(config);
        let maximal: BTreeMap<String, GeneralizationSet> = ds
            .trees
            .iter()
            .map(|(name, tree)| (name.clone(), GeneralizationSet::at_depth(tree, 0)))
            .collect();
        let binned = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        let (wm, mark) = watermarker(10);
        let (marked, _) = wm.embed(&binned, &ds.trees, &mark).unwrap();
        for column in marked.schema().quasi_names() {
            assert!(
                medshield_metrics::column_satisfies_k(&marked, column, 4).unwrap(),
                "column {column} fell below k after watermarking"
            );
        }
        // Keep the multi-attribute checker exercised on the pre-watermark data.
        let quasi = binned.table.schema().quasi_names();
        assert!(satisfies_k_anonymity(&binned.table, &quasi, 8).unwrap());
    }

    #[test]
    fn watermarked_values_remain_within_usage_metrics() {
        let (ds, binned) = binned_dataset(800, 4);
        let (wm, mark) = watermarker(6);
        let (marked, _) = wm.embed(&binned, &ds.trees, &mark).unwrap();
        for cb in &binned.columns {
            let tree = &ds.trees[&cb.column];
            for v in marked.column_values(&cb.column).unwrap() {
                let node = tree.node_for_value(&v).unwrap();
                // Every value sits at or below a maximal generalization node
                // (never above the usage metrics)...
                assert!(cb.maximal.covering_node(tree, node).is_ok());
                // ...and is exactly an ultimate generalization node, because
                // embedding always descends until it reaches one.
                assert!(cb.ultimate.contains(node), "column {} value {v}", cb.column);
            }
        }
    }

    #[test]
    fn smaller_eta_selects_more_tuples_and_changes_more_cells() {
        let (ds, binned) = binned_dataset(1500, 4);
        let (wm_small, mark) = watermarker(5);
        let (wm_large, _) = watermarker(100);
        let (_, report_small) = wm_small.embed(&binned, &ds.trees, &mark).unwrap();
        let (_, report_large) = wm_large.embed(&binned, &ds.trees, &mark).unwrap();
        assert!(report_small.selected_tuples > report_large.selected_tuples);
        assert!(report_small.changed_cells >= report_large.changed_cells);
    }

    #[test]
    fn restricting_columns_limits_the_changes() {
        let (ds, binned) = binned_dataset(800, 4);
        // Restrict embedding to the column that kept the most granularity
        // after binning (the one with actual bandwidth).
        let target = binned
            .columns
            .iter()
            .max_by_key(|cb| cb.ultimate.len())
            .map(|cb| cb.column.clone())
            .unwrap();
        let key = WatermarkKey::from_master(b"owner", 4);
        let mut config = WatermarkConfig::new(key);
        config.duplication = 2;
        config.columns = Some(vec![target.clone()]);
        let wm = HierarchicalWatermarker::new(config);
        let mark = Mark::from_bytes(b"m", 20);
        let (marked, report) = wm.embed(&binned, &ds.trees, &mark).unwrap();
        assert!(report.embedded_cells > 0, "the granular column must carry bits");
        // Only the chosen column may differ from the binned table.
        for (a, b) in binned.table.iter().zip(marked.iter()) {
            for (idx, col) in binned.table.schema().columns().iter().enumerate() {
                if col.name != target {
                    assert_eq!(a.values[idx], b.values[idx], "column {} changed", col.name);
                }
            }
        }
        // And detection restricted to that column still works.
        let detected = wm.detect(&marked, &binned.columns, &ds.trees, mark.len()).unwrap();
        assert_eq!(detected.mark, mark.bits());
    }

    #[test]
    fn weighted_voting_also_roundtrips() {
        let (ds, binned) = binned_dataset(1000, 4);
        let key = WatermarkKey::from_master(b"owner", 10);
        let mut config = WatermarkConfig::new(key);
        config.weighted_voting = true;
        let wm = HierarchicalWatermarker::new(config);
        let mark = Mark::from_bytes(b"weighted", 20);
        let (marked, _) = wm.embed(&binned, &ds.trees, &mark).unwrap();
        let detected = wm.detect(&marked, &binned.columns, &ds.trees, mark.len()).unwrap();
        assert_eq!(detected.mark, mark.bits());
    }

    #[test]
    fn empty_mark_and_zero_eta_are_rejected() {
        let (ds, binned) = binned_dataset(100, 2);
        let (wm, _) = watermarker(10);
        assert!(matches!(
            wm.embed(&binned, &ds.trees, &Mark::from_bits(vec![])),
            Err(WatermarkError::EmptyMark)
        ));
        assert!(matches!(
            wm.detect(&binned.table, &binned.columns, &ds.trees, 0),
            Err(WatermarkError::EmptyMark)
        ));
        let bad_key = WatermarkKey::new(b"a".to_vec(), b"b".to_vec(), 0);
        let bad = HierarchicalWatermarker::new(WatermarkConfig::new(bad_key));
        assert!(matches!(
            bad.embed(&binned, &ds.trees, &Mark::from_bytes(b"m", 8)),
            Err(WatermarkError::InvalidEta)
        ));
    }

    /// An attacker who deletes the virtual-key columns destroys the tuple
    /// identities; detection must degrade to a zero-vote "no watermark
    /// found" report, not fail with a schema error.
    #[test]
    fn detection_survives_deleted_virtual_key_column() {
        use medshield_relation::{Schema, Table};

        let (ds, binned) = binned_dataset(400, 4);
        let key = WatermarkKey::from_master(b"owner", 5);
        let mut config = WatermarkConfig::new(key);
        config.duplication = 2;
        config.virtual_key_columns = vec!["age".into()];
        let wm = HierarchicalWatermarker::new(config);
        let mark = Mark::from_bytes(b"vk", 16);
        let (marked, _) = wm.embed(&binned, &ds.trees, &mark).unwrap();

        // The attacker drops the `age` column entirely.
        let keep: Vec<usize> = marked
            .schema()
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.name != "age")
            .map(|(i, _)| i)
            .collect();
        let schema =
            Schema::new(keep.iter().map(|&i| marked.schema().columns()[i].clone()).collect())
                .unwrap();
        let mut suspect = Table::new(schema);
        for tuple in marked.iter() {
            suspect.insert(keep.iter().map(|&i| tuple.values[i].clone()).collect()).unwrap();
        }

        let report = wm.detect(&suspect, &binned.columns, &ds.trees, mark.len()).unwrap();
        assert_eq!(report.selected_tuples, 0);
        assert_eq!(report.covered_positions, 0);
        assert!(report.mark.iter().all(|&b| !b), "no votes must mean an all-false mark");
    }

    #[test]
    fn missing_tree_is_reported() {
        let (ds, binned) = binned_dataset(100, 2);
        let (wm, mark) = watermarker(10);
        let mut trees = ds.trees.clone();
        trees.remove("symptom");
        assert!(matches!(
            wm.embed(&binned, &trees, &mark),
            Err(WatermarkError::MissingTree(c)) if c == "symptom"
        ));
    }

    #[test]
    fn detection_on_unwatermarked_table_does_not_match() {
        let (ds, binned) = binned_dataset(1200, 4);
        let (wm, mark) = watermarker(10);
        // Detect directly on the binned (never watermarked) table.
        let detected = wm.detect(&binned.table, &binned.columns, &ds.trees, mark.len()).unwrap();
        let loss = mark_loss(mark.bits(), &detected.mark);
        assert!(loss > 0.15, "unwatermarked data should not contain the mark (loss {loss})");
    }
}

//! The rightful-ownership protocol of §5.4.
//!
//! Robustness of the embedding is not enough to establish ownership: an
//! attacker can add his own mark to the watermarked data (attack 1) or
//! "subtract" a bogus mark to fabricate a bogus original (attack 2). The
//! multimedia literature's answer is to derive the mark from the original
//! data through a one-way function, `wm = F(D_o)`, and to require the
//! original in court. The paper's insight is that the binned table already
//! carries an encrypted copy of the identifying columns, so the owner does
//! not need to present the whole original table: the mark is `F(v)` for a
//! statistic `v` (e.g. the mean) of the *clear-text* identifying column, and
//! in a dispute the court decrypts the identifiers of the contested table,
//! recomputes the statistic `v'`, checks `|v − v'| < τ`, and finally compares
//! the extracted mark against `F(v)`.

use crate::key::Mark;
use medshield_metrics::mark_loss;
use medshield_relation::{Table, Value};
use serde::{Deserialize, Serialize};

/// The owner's side of the protocol: the statistic of the clear-text
/// identifying column and the mark derived from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwnershipProof {
    /// The statistic `v` (mean of the numeric projection of the identifying
    /// values).
    pub statistic: f64,
    /// Length of the owner's mark in bits.
    pub mark_len: usize,
}

impl OwnershipProof {
    /// Compute the proof from the *original* (pre-binning) table: the mean of
    /// the numeric projections of the identifying column values.
    pub fn from_original_table(table: &Table, mark_len: usize) -> Option<OwnershipProof> {
        let ident_indices = table.schema().identifying_indices();
        let first = *ident_indices.first()?;
        let values: Vec<f64> =
            table.iter().map(|t| numeric_projection(&t.values[first].canonical_bytes())).collect();
        if values.is_empty() {
            return None;
        }
        let statistic = values.iter().sum::<f64>() / values.len() as f64;
        Some(OwnershipProof { statistic, mark_len })
    }

    /// The owner's mark, `wm = F(v)`: the statistic is quantized and pushed
    /// through a one-way function (SHA-256 based bit expansion).
    pub fn mark(&self) -> Mark {
        mark_from_statistic(self.statistic, self.mark_len)
    }
}

/// The court's verdict in an ownership dispute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwnershipVerdict {
    /// The statistic the claimant presented.
    pub claimed_statistic: f64,
    /// The statistic recomputed from the decrypted identifiers of the table
    /// in dispute.
    pub recomputed_statistic: f64,
    /// Whether `|v − v'| < τ`.
    pub statistic_consistent: bool,
    /// Fraction of mark bits that differ between `F(v)` and the mark
    /// extracted from the disputed table.
    pub mark_loss: f64,
    /// The overall decision: statistic consistent **and** the extracted mark
    /// matches `F(v)` up to `max_mark_loss`.
    pub accepted: bool,
}

/// Resolve an ownership dispute.
///
/// * `claim` — the claimant's statistic and mark length.
/// * `disputed` — the table in dispute (binned + watermarked, possibly
///   attacked).
/// * `identifier_column` — the (encrypted) identifying column of `disputed`.
/// * `decrypt` — the claimant's decryption of an encrypted identifier; only
///   the rightful owner can supply this (it requires the binning key).
///   Returning `None` marks the value as undecryptable.
/// * `tau` — the tolerance `τ` on the statistic.
/// * `extracted_mark` — the mark the detector extracted from `disputed`.
/// * `max_mark_loss` — how many of the mark bits may disagree (fraction).
pub fn resolve_dispute(
    claim: &OwnershipProof,
    disputed: &Table,
    identifier_column: &str,
    decrypt: impl Fn(&str) -> Option<Vec<u8>>,
    tau: f64,
    extracted_mark: &[bool],
    max_mark_loss: f64,
) -> OwnershipVerdict {
    let recomputed = recompute_statistic(disputed, identifier_column, &decrypt);
    let statistic_consistent = (claim.statistic - recomputed).abs() < tau;
    let expected = claim.mark();
    let loss = mark_loss(expected.bits(), extracted_mark);
    OwnershipVerdict {
        claimed_statistic: claim.statistic,
        recomputed_statistic: recomputed,
        statistic_consistent,
        mark_loss: loss,
        accepted: statistic_consistent && loss <= max_mark_loss,
    }
}

/// Recompute the statistic over the decrypted identifying column of a table
/// in dispute. Undecryptable or missing values are skipped (the paper
/// anticipates deleted/added tuples, which is why a statistic is used instead
/// of the exact clear-text).
pub fn recompute_statistic(
    table: &Table,
    identifier_column: &str,
    decrypt: &impl Fn(&str) -> Option<Vec<u8>>,
) -> f64 {
    let mut values = Vec::new();
    let Ok(column) = table.column_values(identifier_column) else {
        return f64::NAN;
    };
    for v in column {
        let Value::Text(cipher) = v else { continue };
        if let Some(clear) = decrypt(&cipher) {
            values.push(numeric_projection(&clear));
        }
    }
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// `F(v)`: derive a mark from the quantized statistic through a one-way
/// function.
pub fn mark_from_statistic(statistic: f64, mark_len: usize) -> Mark {
    // Quantize to a fixed precision so that the owner's v and the court's
    // F(v) computation agree bit-for-bit.
    let quantized = format!("{statistic:.6}");
    Mark::from_bytes(quantized.as_bytes(), mark_len)
}

/// Numeric projection of an identifier's bytes: the decimal digits found in
/// the value, interpreted as an integer (e.g. SSN `123-45-6789` →
/// `123456789`). Values without digits fall back to a byte sum so that every
/// identifier contributes.
pub fn numeric_projection(bytes: &[u8]) -> f64 {
    let mut digits: u64 = 0;
    let mut count = 0u32;
    for &b in bytes {
        if b.is_ascii_digit() && count < 12 {
            digits = digits * 10 + u64::from(b - b'0');
            count += 1;
        }
    }
    if count > 0 {
        digits as f64
    } else {
        bytes.iter().map(|&b| b as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_relation::{ColumnDef, ColumnRole, Schema};

    fn original_table(n: usize) -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("ssn", ColumnRole::Identifying),
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            t.insert(vec![
                Value::text(format!("{:03}-{:02}-{:04}", i % 1000, i % 100, i % 10_000)),
                Value::int((i % 90) as i64),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn numeric_projection_reads_digits() {
        assert_eq!(numeric_projection(b"123-45-6789"), 123_456_789.0);
        assert_eq!(numeric_projection(b"007"), 7.0);
        // Truncates to 12 digits.
        assert_eq!(numeric_projection(b"12345678901234567890"), 123_456_789_012.0);
        // No digits → byte sum fallback.
        assert_eq!(numeric_projection(b"ab"), (b'a' as f64) + (b'b' as f64));
    }

    #[test]
    fn proof_is_deterministic_and_mark_depends_on_statistic() {
        let t = original_table(500);
        let p1 = OwnershipProof::from_original_table(&t, 20).unwrap();
        let p2 = OwnershipProof::from_original_table(&t, 20).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.mark(), p2.mark());
        let other = OwnershipProof { statistic: p1.statistic + 1.0, mark_len: 20 };
        assert_ne!(p1.mark(), other.mark());
        // Empty table has no proof.
        let empty = Table::new(t.schema().clone());
        assert!(OwnershipProof::from_original_table(&empty, 20).is_none());
    }

    #[test]
    fn dispute_accepts_the_rightful_owner() {
        use medshield_crypto::Aes128;
        let original = original_table(400);
        let cipher = Aes128::from_secret(b"owner-binning-secret");
        // Build the "binned" table: encrypted identifiers.
        let mut disputed = original.snapshot();
        for id in disputed.ids() {
            let v = disputed.value(id, "ssn").unwrap().clone();
            let enc = cipher.encrypt_value(&v.canonical_bytes());
            disputed.set_value(id, "ssn", Value::Text(enc)).unwrap();
        }
        let claim = OwnershipProof::from_original_table(&original, 20).unwrap();
        let extracted = claim.mark();
        let verdict = resolve_dispute(
            &claim,
            &disputed,
            "ssn",
            |c| cipher.decrypt_value(c).ok(),
            1.0,
            extracted.bits(),
            0.2,
        );
        assert!(verdict.statistic_consistent, "{verdict:?}");
        assert_eq!(verdict.mark_loss, 0.0);
        assert!(verdict.accepted);
    }

    #[test]
    fn dispute_survives_moderate_tuple_deletion() {
        use medshield_crypto::Aes128;
        let original = original_table(1000);
        let cipher = Aes128::from_secret(b"owner-binning-secret");
        let mut disputed = original.snapshot();
        for id in disputed.ids() {
            let v = disputed.value(id, "ssn").unwrap().clone();
            disputed
                .set_value(id, "ssn", Value::Text(cipher.encrypt_value(&v.canonical_bytes())))
                .unwrap();
        }
        // The attacker deletes 20% of the tuples, spread across the table.
        let victims: Vec<_> = disputed.ids().into_iter().step_by(5).collect();
        disputed.delete_ids(&victims);

        let claim = OwnershipProof::from_original_table(&original, 20).unwrap();
        let verdict = resolve_dispute(
            &claim,
            &disputed,
            "ssn",
            |c| cipher.decrypt_value(c).ok(),
            // τ tolerant of the sampling shift caused by deletions.
            claim.statistic * 0.2,
            claim.mark().bits(),
            0.2,
        );
        assert!(verdict.statistic_consistent, "{verdict:?}");
        assert!(verdict.accepted);
    }

    #[test]
    fn dispute_rejects_an_attacker_without_the_decryption_key() {
        use medshield_crypto::Aes128;
        let original = original_table(300);
        let cipher = Aes128::from_secret(b"owner-binning-secret");
        let mut disputed = original.snapshot();
        for id in disputed.ids() {
            let v = disputed.value(id, "ssn").unwrap().clone();
            disputed
                .set_value(id, "ssn", Value::Text(cipher.encrypt_value(&v.canonical_bytes())))
                .unwrap();
        }
        // The attacker claims ownership with his own (different) statistic and
        // cannot decrypt the identifiers, so the recomputation fails.
        let attacker_claim = OwnershipProof { statistic: 42.0, mark_len: 20 };
        let wrong_cipher = Aes128::from_secret(b"attacker-guess");
        let verdict = resolve_dispute(
            &attacker_claim,
            &disputed,
            "ssn",
            |c| wrong_cipher.decrypt_value(c).ok(),
            1.0,
            attacker_claim.mark().bits(),
            0.2,
        );
        assert!(!verdict.accepted, "{verdict:?}");
    }

    #[test]
    fn dispute_rejects_a_wrong_mark_even_with_a_consistent_statistic() {
        use medshield_crypto::Aes128;
        let original = original_table(300);
        let cipher = Aes128::from_secret(b"owner-binning-secret");
        let mut disputed = original.snapshot();
        for id in disputed.ids() {
            let v = disputed.value(id, "ssn").unwrap().clone();
            disputed
                .set_value(id, "ssn", Value::Text(cipher.encrypt_value(&v.canonical_bytes())))
                .unwrap();
        }
        let claim = OwnershipProof::from_original_table(&original, 20).unwrap();
        // The extracted mark is garbage (e.g. the mark was destroyed or was
        // never this owner's): flip every bit of F(v).
        let flipped: Vec<bool> = claim.mark().bits().iter().map(|b| !b).collect();
        let verdict = resolve_dispute(
            &claim,
            &disputed,
            "ssn",
            |c| cipher.decrypt_value(c).ok(),
            1.0,
            &flipped,
            0.2,
        );
        assert!(verdict.statistic_consistent);
        assert!(!verdict.accepted);
        assert!(verdict.mark_loss > 0.5);
    }

    #[test]
    fn recompute_handles_missing_column_and_empty_table() {
        let t = original_table(5);
        let stat = recompute_statistic(&t, "missing", &|_c: &str| None);
        assert!(stat.is_nan());
        let stat = recompute_statistic(&t, "ssn", &|_c: &str| None);
        // ssn values are clear text (not encrypted hex) and decrypt returns
        // None → no values → NaN.
        assert!(stat.is_nan());
    }
}

//! Precomputed per-run state for chunked embedding and detection.
//!
//! The per-tuple work of both watermarking schemes — keyed selection,
//! bit-index derivation, tree walks — depends only on the tuple's own values
//! (Eq. 5 keys every decision on the tuple identity, never on row position).
//! Everything that *does* need the table as a whole (schema lookups,
//! tree/binning validation, mark duplication) is hoisted into a plan built
//! once per run. Workers then process disjoint `&[Tuple]` / `&mut [Tuple]`
//! row chunks against the shared plan, which is what makes the chunk-parallel
//! engine's output byte-identical to the sequential path.

use crate::error::WatermarkError;
use crate::key::{Mark, WatermarkConfig};
use crate::select::{ResolvedIdentity, Selector, TupleIdentity};
use medshield_binning::ColumnBinning;
use medshield_dht::DomainHierarchyTree;
use medshield_relation::Schema;
use std::collections::BTreeMap;

/// One watermark-target column, fully resolved: its index in the schema, its
/// binning state, and its domain hierarchy tree.
#[derive(Debug, Clone)]
pub(crate) struct PlanColumn<'a> {
    /// Index of the column in the (binned) table's schema.
    pub index: usize,
    /// The column's binning state (maximal / ultimate generalization nodes).
    pub binning: &'a ColumnBinning,
    /// The column's domain hierarchy tree.
    pub tree: &'a DomainHierarchyTree,
}

/// How to treat a target column that the table's schema does not contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MissingColumns {
    /// Fail the plan — embedding must be able to write every target column.
    Reject,
    /// Drop the column from the plan — a suspect table may have had columns
    /// deleted by an attacker, and detection simply collects no votes there.
    Skip,
}

/// State shared by every chunk of one embedding or detection run.
#[derive(Debug, Clone)]
pub(crate) struct PlanCore<'a> {
    /// The keyed selector (Eq. 5 + permutation / bit indices).
    pub selector: Selector,
    /// The schema-resolved tuple identity source. `None` only in detection
    /// plans whose virtual-key columns the (attacked) table no longer has:
    /// no identity means no tuple can be selected, so such a run simply
    /// collects zero votes instead of failing.
    pub identity: Option<ResolvedIdentity>,
    /// The resolved target columns.
    pub columns: Vec<PlanColumn<'a>>,
}

impl<'a> PlanCore<'a> {
    /// Resolve the run-wide state: selector, identity and target columns.
    pub fn build(
        config: &WatermarkConfig,
        schema: &Schema,
        binning_columns: &'a [ColumnBinning],
        trees: &'a BTreeMap<String, DomainHierarchyTree>,
        missing: MissingColumns,
    ) -> Result<Self, WatermarkError> {
        let selector = Selector::new(&config.key)?;
        let identity = match TupleIdentity::from_virtual_columns(&config.virtual_key_columns)
            .resolve(schema)
        {
            Ok(resolved) => Some(resolved),
            // A virtual-key column the suspect table no longer carries: in
            // skip mode (detection) the run degrades to a no-votes report, as
            // the sequential detectors always did. Misconfiguration
            // (NoIdentity, duplicate columns) still fails in either mode.
            Err(WatermarkError::Relation(_)) if missing == MissingColumns::Skip => None,
            Err(e) => return Err(e),
        };
        let targets: Vec<&'a ColumnBinning> = match &config.columns {
            Some(wanted) => binning_columns.iter().filter(|c| wanted.contains(&c.column)).collect(),
            None => binning_columns.iter().collect(),
        };
        let mut columns = Vec::with_capacity(targets.len());
        for cb in targets {
            let tree = trees
                .get(&cb.column)
                .ok_or_else(|| WatermarkError::MissingTree(cb.column.clone()))?;
            match schema.index_of(&cb.column) {
                Ok(index) => columns.push(PlanColumn { index, binning: cb, tree }),
                Err(e) => match missing {
                    MissingColumns::Reject => return Err(e.into()),
                    MissingColumns::Skip => continue,
                },
            }
        }
        Ok(PlanCore { selector, identity, columns })
    }
}

/// Everything a worker needs to embed the mark into a row chunk. Built by
/// `plan_embed` on either watermarker; immutable and shareable across
/// threads.
#[derive(Debug, Clone)]
pub struct EmbedPlan<'a> {
    pub(crate) core: PlanCore<'a>,
    /// The extended (duplicated) mark `wmd`.
    pub(crate) wmd: Vec<bool>,
}

impl<'a> EmbedPlan<'a> {
    pub(crate) fn build(
        config: &WatermarkConfig,
        schema: &Schema,
        binning_columns: &'a [ColumnBinning],
        trees: &'a BTreeMap<String, DomainHierarchyTree>,
        mark: &Mark,
    ) -> Result<Self, WatermarkError> {
        if mark.is_empty() {
            return Err(WatermarkError::EmptyMark);
        }
        let core = PlanCore::build(config, schema, binning_columns, trees, MissingColumns::Reject)?;
        Ok(EmbedPlan { core, wmd: mark.duplicate(config.duplication) })
    }

    /// Length of the extended mark `wmd`.
    pub fn wmd_len(&self) -> usize {
        self.wmd.len()
    }
}

/// Everything a worker needs to collect detection votes from a row chunk.
/// Built by `plan_detect` on either watermarker; immutable and shareable
/// across threads.
#[derive(Debug, Clone)]
pub struct DetectPlan<'a> {
    pub(crate) core: PlanCore<'a>,
    /// Length of the extended mark `wmd`.
    pub(crate) wmd_len: usize,
}

impl<'a> DetectPlan<'a> {
    pub(crate) fn build(
        config: &WatermarkConfig,
        schema: &Schema,
        binning_columns: &'a [ColumnBinning],
        trees: &'a BTreeMap<String, DomainHierarchyTree>,
        mark_len: usize,
    ) -> Result<Self, WatermarkError> {
        if mark_len == 0 {
            return Err(WatermarkError::EmptyMark);
        }
        let core = PlanCore::build(config, schema, binning_columns, trees, MissingColumns::Skip)?;
        Ok(DetectPlan { core, wmd_len: mark_len * config.duplication.max(1) })
    }

    /// Length of the extended mark `wmd`.
    pub fn wmd_len(&self) -> usize {
        self.wmd_len
    }
}

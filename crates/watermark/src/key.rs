//! The secret watermarking key, the mark, and the agent configuration.
//!
//! The paper's key has three elements (Table 1): `k1` drives tuple selection,
//! `k2` drives the permutation and mark-bit indices, and `η` tunes the
//! selection rate (one tuple in η is watermarked on average). Distinct keys
//! for distinct purposes keep the calculations uncorrelated (§5.3).

use medshield_crypto::{sha256, KeyedPrf};
use serde::{Deserialize, Serialize};

/// The secret watermarking key `(k1, k2, η)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatermarkKey {
    /// Key for the tuple-selection hash (Eq. 5).
    pub k1: Vec<u8>,
    /// Key for the permutation-index and mark-bit-index hashes (Fig. 9).
    pub k2: Vec<u8>,
    /// Selection modulus: a tuple is watermarked when
    /// `H(ident, k1) mod η == 0`. Smaller η ⇒ more bandwidth, more alteration.
    pub eta: u64,
}

impl WatermarkKey {
    /// Create a key from two secrets and η.
    pub fn new(k1: impl Into<Vec<u8>>, k2: impl Into<Vec<u8>>, eta: u64) -> Self {
        WatermarkKey { k1: k1.into(), k2: k2.into(), eta }
    }

    /// Derive both sub-keys from a single master secret (domain-separated),
    /// with the given η.
    pub fn from_master(master: &[u8], eta: u64) -> Self {
        let mut k1_input = master.to_vec();
        k1_input.extend_from_slice(b"/k1");
        let mut k2_input = master.to_vec();
        k2_input.extend_from_slice(b"/k2");
        WatermarkKey {
            k1: sha256::sha256(&k1_input).to_vec(),
            k2: sha256::sha256(&k2_input).to_vec(),
            eta,
        }
    }

    /// PRF keyed with `k1` (tuple selection).
    pub fn selection_prf(&self) -> KeyedPrf {
        KeyedPrf::new(&self.k1)
    }

    /// PRF keyed with `k2` (permutation / bit-position indices).
    pub fn permutation_prf(&self) -> KeyedPrf {
        KeyedPrf::new(&self.k2)
    }
}

/// The mark: an owner-specific bit string (the paper's experiments use a
/// 20-bit mark embedded multiple times).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mark {
    bits: Vec<bool>,
}

impl Mark {
    /// Create a mark from explicit bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Mark { bits }
    }

    /// Derive a `len`-bit mark from arbitrary bytes by hashing (the one-way
    /// `F()` of the rightful-ownership construction).
    pub fn from_bytes(data: &[u8], len: usize) -> Self {
        let mut bits = Vec::with_capacity(len);
        let mut counter = 0u32;
        while bits.len() < len {
            let mut input = data.to_vec();
            input.extend_from_slice(&counter.to_be_bytes());
            let digest = sha256::sha256(&input);
            for byte in digest {
                for i in (0..8).rev() {
                    if bits.len() == len {
                        break;
                    }
                    bits.push((byte >> i) & 1 == 1);
                }
            }
            counter += 1;
        }
        Mark { bits }
    }

    /// The bits of the mark.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Pack the bits into bytes, most-significant bit first, for compact
    /// serialization; pair with [`Mark::from_packed_bits`]. The final byte
    /// is zero-padded when the bit count is not a multiple of eight.
    pub fn to_packed_bits(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, &bit) in self.bits.iter().enumerate() {
            if bit {
                out[i / 8] |= 1 << (7 - (i % 8));
            }
        }
        out
    }

    /// Rebuild a mark from [`Mark::to_packed_bits`] output. Returns `None`
    /// when `bytes` cannot hold `len` bits — the deserialization caller
    /// treats that as corrupt input, never as a panic.
    pub fn from_packed_bits(len: usize, bytes: &[u8]) -> Option<Mark> {
        if bytes.len() != len.div_ceil(8) {
            return None;
        }
        let bits =
            (0..len).map(|i| bytes[i / 8] & (1 << (7 - (i % 8))) != 0).collect::<Vec<bool>>();
        Some(Mark { bits })
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if the mark has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// `Duplicate(wm)`: replicate the mark `copies` times into the extended
    /// mark `wmd` used for multiple embedding.
    pub fn duplicate(&self, copies: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.bits.len() * copies.max(1));
        for _ in 0..copies.max(1) {
            out.extend_from_slice(&self.bits);
        }
        out
    }

    /// Collapse a recovered extended mark back to `len(self)` bits by
    /// majority voting across the copies; positions with no information
    /// default to `false`.
    pub fn fold_majority(recovered: &[Option<bool>], mark_len: usize) -> Vec<bool> {
        let mut ones = vec![0i64; mark_len];
        let mut total = vec![0i64; mark_len];
        for (i, bit) in recovered.iter().enumerate() {
            if let Some(b) = bit {
                let pos = i % mark_len;
                total[pos] += 1;
                if *b {
                    ones[pos] += 1;
                }
            }
        }
        (0..mark_len).map(|i| ones[i] * 2 > total[i]).collect()
    }
}

impl std::fmt::Display for Mark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.bits {
            write!(f, "{}", if *b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// Configuration of the watermarking agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatermarkConfig {
    /// The secret key.
    pub key: WatermarkKey,
    /// Number of times the mark is replicated into `wmd` (multiple
    /// embedding, §5.3).
    pub duplication: usize,
    /// Columns to embed into; `None` means every quasi-identifying column.
    pub columns: Option<Vec<String>>,
    /// Use level-weighted majority voting in detection (copies recovered
    /// from higher levels get more weight, §5.3).
    pub weighted_voting: bool,
    /// Columns forming a virtual primary key when the identifying columns
    /// cannot be relied on (footnote 1 of the paper). Empty means "use the
    /// identifying columns".
    pub virtual_key_columns: Vec<String>,
}

impl WatermarkConfig {
    /// A configuration with the given key and defaults for the rest.
    pub fn new(key: WatermarkKey) -> Self {
        WatermarkConfig {
            key,
            duplication: 8,
            columns: None,
            weighted_voting: false,
            virtual_key_columns: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_master_derives_distinct_subkeys() {
        let key = WatermarkKey::from_master(b"hospital-secret", 100);
        assert_ne!(key.k1, key.k2);
        assert_eq!(key.eta, 100);
        // Deterministic.
        assert_eq!(key, WatermarkKey::from_master(b"hospital-secret", 100));
        assert_ne!(key.k1, WatermarkKey::from_master(b"other", 100).k1);
    }

    #[test]
    fn prfs_are_keyed_separately() {
        let key = WatermarkKey::from_master(b"secret", 50);
        assert_ne!(key.selection_prf().value(b"x"), key.permutation_prf().value(b"x"));
    }

    #[test]
    fn mark_from_bytes_has_requested_length_and_is_deterministic() {
        for len in [1usize, 8, 20, 64, 300] {
            let m = Mark::from_bytes(b"owner", len);
            assert_eq!(m.len(), len);
            assert_eq!(m, Mark::from_bytes(b"owner", len));
        }
        assert_ne!(Mark::from_bytes(b"owner-a", 20), Mark::from_bytes(b"owner-b", 20));
        assert!(!Mark::from_bytes(b"x", 20).is_empty());
    }

    #[test]
    fn duplicate_replicates_bits() {
        let m = Mark::from_bits(vec![true, false, true]);
        let d = m.duplicate(3);
        assert_eq!(d.len(), 9);
        assert_eq!(&d[0..3], m.bits());
        assert_eq!(&d[3..6], m.bits());
        // Zero copies is clamped to one.
        assert_eq!(m.duplicate(0).len(), 3);
    }

    #[test]
    fn fold_majority_votes_across_copies() {
        // mark_len = 2, three copies; position 0 sees [1, 1, 0] → 1,
        // position 1 sees [0, None, 0] → 0.
        let recovered = vec![Some(true), Some(false), Some(true), None, Some(false), Some(false)];
        assert_eq!(Mark::fold_majority(&recovered, 2), vec![true, false]);
    }

    #[test]
    fn fold_majority_defaults_to_false_without_information() {
        assert_eq!(Mark::fold_majority(&[None, None], 2), vec![false, false]);
    }

    #[test]
    fn display_renders_bits() {
        let m = Mark::from_bits(vec![true, false, true, true]);
        assert_eq!(m.to_string(), "1011");
    }
}

//! Columnar batch kernels for watermark embedding and detection.
//!
//! The row-at-a-time kernels used to redo three pieces of work for every
//! (tuple, column) cell: re-derive the tuple's identity bytes from owned
//! [`Value`]s, re-run the HMAC key schedule inside every PRF call, and
//! re-resolve the cell's value against the domain hierarchy tree. With the
//! columnar [`Table`] core all three are hoisted out of the row loop:
//!
//! * **Identity bytes** — the framed byte encoding of each dictionary entry
//!   of an identity column is precomputed once per run (`IdentCodec`);
//!   the per-row work is a code lookup plus a `memcpy`. Integer identity
//!   columns are framed inline from the native `i64` vector.
//! * **PRF label schedules** — the per-column `bit:` / `perm:` label prefixes
//!   are precomputed ([`KeyedPrf::label_prefix`]) and each per-cell PRF is a
//!   single midstate-cached HMAC over `prefix ‖ ident`
//!   ([`KeyedPrf::prefixed_value_wide`]). The 128-bit wide value is reduced
//!   per sibling-set size with [`KeyedPrf::reduce_wide`], which is exactly
//!   the reduction the labeled per-call path performs — so one HMAC now
//!   serves every level of a tree walk.
//! * **Tree resolution** — everything about a cell that depends only on its
//!   *value* (null checks, ultimate/maximal node lookup, detection's climb
//!   and per-level vote) is memoized per dictionary code, so each distinct
//!   value is resolved once per run instead of once per row.
//!
//! Embedding never mutates the table inside the hot loop: workers scan
//! disjoint row ranges of a shared `&Table` and emit per-column *edit lists*
//! of `(row, dictionary code)` pairs ([`EmbedChunk`]), which
//! [`EmbedKernel::apply`] writes back on the caller's thread. This is what
//! lets the chunk-parallel engine share one immutable table across workers
//! while staying byte-identical to the sequential path.

use crate::error::WatermarkError;
use crate::hierarchical::{climb_and_read, DetectionTally, EmbeddingReport};
use crate::plan::{DetectPlan, EmbedPlan, PlanColumn};
use crate::select::{set_parity, ResolvedIdentity};
use crate::voting::{level_weights, majority, weighted_majority};
use medshield_crypto::KeyedPrf;
use medshield_dht::{DomainHierarchyTree, GeneralizationSet, NodeId};
use medshield_relation::{Column, ColumnData, Table, Value};
use std::collections::HashMap;
use std::ops::Range;

/// Length-prefix one identity field the way `ResolvedIdentity::bytes` does.
fn frame_value_into(value: &Value, out: &mut Vec<u8>) {
    let field = value.canonical_bytes();
    out.extend_from_slice(&(field.len() as u64).to_be_bytes());
    out.extend_from_slice(&field);
}

/// One identity column, pre-encoded for per-row byte assembly.
#[derive(Debug, Clone)]
enum IdentField {
    /// A native integer column: framed inline from the `i64` vector.
    Int {
        /// Schema index of the column.
        col: usize,
    },
    /// A dictionary column: every entry's framed bytes precomputed once.
    Dict {
        /// Schema index of the column.
        col: usize,
        /// Framed identity bytes per dictionary code.
        framed: Vec<Vec<u8>>,
    },
}

/// The per-run identity encoder: emits exactly the bytes of
/// [`ResolvedIdentity::bytes`] for any row, without materializing a tuple.
#[derive(Debug, Clone)]
struct IdentCodec {
    fields: Vec<IdentField>,
}

impl IdentCodec {
    /// Precompute the framed encodings against the table's current
    /// dictionaries. Must be built *after* any dictionary growth of the run
    /// (embedding interns its write targets first).
    fn build(identity: &ResolvedIdentity, table: &Table) -> Self {
        let fields = identity
            .indices()
            .iter()
            .map(|&col| match table.columns()[col].data() {
                ColumnData::Int(_) => IdentField::Int { col },
                ColumnData::Dict { dict, .. } => {
                    let mut framed = Vec::with_capacity(dict.len());
                    for v in dict {
                        let mut buf = Vec::new();
                        frame_value_into(v, &mut buf);
                        framed.push(buf);
                    }
                    IdentField::Dict { col, framed }
                }
            })
            .collect();
        IdentCodec { fields }
    }

    /// Append the identity bytes of `row` to `out`.
    fn write(&self, columns: &[Column], row: usize, out: &mut Vec<u8>) {
        for field in &self.fields {
            match field {
                IdentField::Int { col } => {
                    if let ColumnData::Int(values) = columns[*col].data() {
                        // Value::Int canonical bytes: tag 0x01 + 8 BE bytes,
                        // hence a fixed 9-byte length prefix.
                        out.extend_from_slice(&9u64.to_be_bytes());
                        out.push(0x01);
                        out.extend_from_slice(&values[row].to_be_bytes());
                    } else {
                        // The column was promoted after this codec was built;
                        // fall back to the materializing path.
                        frame_value_into(&columns[*col].value(row), out);
                    }
                }
                IdentField::Dict { col, framed } => {
                    let mut done = false;
                    if let ColumnData::Dict { codes, .. } = columns[*col].data() {
                        if let Some(bytes) = framed.get(codes[row] as usize) {
                            out.extend_from_slice(bytes);
                            done = true;
                        }
                    }
                    if !done {
                        frame_value_into(&columns[*col].value(row), out);
                    }
                }
            }
        }
    }
}

/// Which embedding walk the kernel performs per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EmbedStyle {
    /// Fig. 9: descend from the maximal node, encoding the bit at every
    /// level, until an ultimate node is reached.
    Hierarchical,
    /// §5.2 baseline: permute within the ultimate node's sibling set only.
    SingleLevel,
}

/// What a cell's *value* alone determines about embedding into it.
#[derive(Debug, Clone, Copy)]
enum CellMemo {
    /// Nothing to do and nothing to count (single-level null / unresolvable
    /// value, or a dictionary entry no row references).
    Ignore,
    /// Skipped cell, counted in [`EmbeddingReport::skipped_cells`].
    Skip,
    /// The maximal-node lookup failed during preparation; re-run it on first
    /// hit so a selected row surfaces exactly the error the row-at-a-time
    /// path raised (unselected rows never did).
    Recheck {
        /// The cell's ultimate generalization node.
        target: NodeId,
    },
    /// Ready to embed: walk from `node`.
    Start {
        /// Hierarchical: the covering maximal node. Single-level: the cell's
        /// ultimate node.
        node: NodeId,
    },
}

/// One planned column's precomputed embedding state.
#[derive(Debug, Clone)]
struct EmbedColumn {
    /// Per-dictionary-code memo of the value-determined work.
    memo: Vec<CellMemo>,
    /// Dictionary code of every ultimate node's value, interned up front so
    /// workers can emit codes without touching the dictionary.
    node_code: HashMap<NodeId, u32>,
    /// Precomputed `bit:<column>` label prefix.
    bit_prefix: Vec<u8>,
    /// Precomputed `perm:<column>` label prefix.
    perm_prefix: Vec<u8>,
}

/// One row's write-back: the new dictionary code for a (row, column) cell.
/// The `Value` variant only fires on the defensive walk exit (a non-ultimate
/// leaf), which consistent binning state never produces.
#[derive(Debug, Clone)]
enum Edit {
    Code(usize, u32),
    Value(usize, Value),
}

/// The edits and report of one row range, produced by
/// [`EmbedKernel::run_range`] and consumed by [`EmbedKernel::apply`].
#[derive(Debug, Clone)]
pub struct EmbedChunk {
    report: EmbeddingReport,
    edits: Vec<Vec<Edit>>,
}

/// A prepared embedding run over a columnar table: per-code memos, interned
/// write targets and an identity codec. Immutable once built — workers share
/// it by reference across threads.
#[derive(Debug, Clone)]
pub struct EmbedKernel {
    style: EmbedStyle,
    columns: Vec<EmbedColumn>,
    ident: Option<IdentCodec>,
}

impl EmbedKernel {
    /// Prepare `table` for an embedding run of `plan`: promote every target
    /// column to dictionary encoding, intern the values the walks can write,
    /// memoize the value-determined work per dictionary code, and freeze the
    /// identity codec. The table must not be modified between this call and
    /// [`EmbedKernel::apply`], other than by `apply` itself.
    pub(crate) fn prepare(
        plan: &EmbedPlan<'_>,
        table: &mut Table,
        style: EmbedStyle,
    ) -> Result<Self, WatermarkError> {
        let mut columns = Vec::with_capacity(plan.core.columns.len());
        for pc in &plan.core.columns {
            columns.push(EmbedColumn::prepare(pc, table, style)?);
        }
        let ident = plan.core.identity.as_ref().map(|id| IdentCodec::build(id, table));
        Ok(EmbedKernel { style, columns, ident })
    }

    /// Embed into the rows of `range`, reading the shared `table` and
    /// emitting the edits instead of writing them. Ranges of one run must be
    /// disjoint; merging the chunks in row order via [`EmbedKernel::apply`]
    /// reproduces the sequential result exactly, because every per-cell
    /// decision depends only on the tuple's own pre-edit values.
    pub fn run_range(
        &self,
        plan: &EmbedPlan<'_>,
        table: &Table,
        range: Range<usize>,
    ) -> Result<EmbedChunk, WatermarkError> {
        let mut report = EmbeddingReport::empty(plan.wmd_len());
        let mut edits: Vec<Vec<Edit>> = vec![Vec::new(); self.columns.len()];
        let Some(ident) = &self.ident else {
            // No identity: nothing can be selected (embed plans always carry
            // one; this mirrors the old guard against misused detect plans).
            return Ok(EmbedChunk { report, edits });
        };
        let columns = table.columns();
        let prf = plan.core.selector.permutation_prf();
        let wmd_len = plan.wmd.len() as u64;
        let mut buf = Vec::new();
        for row in range {
            buf.clear();
            ident.write(columns, row, &mut buf);
            if !plan.core.selector.selects(&buf) {
                continue;
            }
            report.selected_tuples += 1;
            for (ci, (st, pc)) in self.columns.iter().zip(&plan.core.columns).enumerate() {
                let code = match columns[pc.index].data() {
                    ColumnData::Dict { codes, .. } => codes[row],
                    // Prepared columns are always dictionary-encoded; treat a
                    // mismatch as an unresolvable cell rather than panicking.
                    ColumnData::Int(_) => continue,
                };
                let start = match st.memo.get(code as usize).copied().unwrap_or(CellMemo::Ignore) {
                    CellMemo::Ignore => continue,
                    CellMemo::Skip => {
                        report.skipped_cells += 1;
                        continue;
                    }
                    CellMemo::Recheck { target } => {
                        let max_node = pc
                            .binning
                            .maximal
                            .covering_node(pc.tree, target)
                            .map_err(WatermarkError::Dht)?;
                        if pc.binning.ultimate.contains(max_node) {
                            report.skipped_cells += 1;
                            continue;
                        }
                        max_node
                    }
                    CellMemo::Start { node } => node,
                };
                let bit_wide = prf.prefixed_value_wide(&st.bit_prefix, &buf);
                let bit = plan.wmd[KeyedPrf::reduce_wide(bit_wide, wmd_len) as usize];
                let perm_wide = prf.prefixed_value_wide(&st.perm_prefix, &buf);
                let new_node = match self.style {
                    EmbedStyle::Hierarchical => {
                        let node =
                            descend_wide(pc.tree, &pc.binning.ultimate, start, perm_wide, bit)?;
                        report.embedded_cells += 1;
                        node
                    }
                    EmbedStyle::SingleLevel => {
                        match permute_wide(pc.tree, &pc.binning.ultimate, start, perm_wide, bit)? {
                            Some(node) => node,
                            None => continue,
                        }
                    }
                };
                match st.node_code.get(&new_node) {
                    Some(&new_code) => {
                        if new_code != code {
                            if self.style == EmbedStyle::Hierarchical {
                                report.changed_cells += 1;
                            }
                            edits[ci].push(Edit::Code(row, new_code));
                        }
                    }
                    None => {
                        // Defensive walk exit on a non-ultimate leaf: write
                        // the value through the slow path.
                        let new_value =
                            pc.tree.node_value(new_node).map_err(WatermarkError::Dht)?;
                        if self.style == EmbedStyle::Hierarchical
                            && new_value != columns[pc.index].value(row)
                        {
                            report.changed_cells += 1;
                        }
                        edits[ci].push(Edit::Value(row, new_value));
                    }
                }
            }
        }
        Ok(EmbedChunk { report, edits })
    }

    /// Write the chunks' edit lists back into `table` (in chunk order, on the
    /// caller's thread) and merge their reports.
    pub fn apply(
        &self,
        plan: &EmbedPlan<'_>,
        table: &mut Table,
        chunks: Vec<EmbedChunk>,
    ) -> Result<EmbeddingReport, WatermarkError> {
        let mut report = EmbeddingReport::empty(plan.wmd_len());
        for chunk in &chunks {
            report.merge(&chunk.report);
        }
        for chunk in chunks {
            for (ci, edits) in chunk.edits.into_iter().enumerate() {
                if edits.is_empty() {
                    continue;
                }
                let index = plan.core.columns[ci].index;
                let Some(column) = table.column_mut(index) else { continue };
                let dict = column.promote();
                for edit in edits {
                    match edit {
                        Edit::Code(row, code) => dict.set_code(row, code),
                        Edit::Value(row, value) => dict.set(row, &value),
                    }
                }
            }
        }
        Ok(report)
    }
}

impl EmbedColumn {
    /// Promote the column, intern every ultimate node's value, and memoize
    /// the value-determined embedding decision per present dictionary code.
    fn prepare(
        pc: &PlanColumn<'_>,
        table: &mut Table,
        style: EmbedStyle,
    ) -> Result<Self, WatermarkError> {
        let column_name = &pc.binning.column;
        let bit_prefix = KeyedPrf::label_prefix(&format!("bit:{column_name}"));
        let perm_prefix = KeyedPrf::label_prefix(&format!("perm:{column_name}"));
        let Some(column) = table.column_mut(pc.index) else {
            // The plan resolved this index against the same schema; an
            // out-of-range index means the table and plan diverged.
            return Err(WatermarkError::Relation(
                medshield_relation::RelationError::UnknownColumn(column_name.clone()),
            ));
        };
        let dict = column.promote();
        let mut node_code = HashMap::with_capacity(pc.binning.ultimate.len());
        for &node in pc.binning.ultimate.nodes() {
            let value = pc.tree.node_value(node).map_err(WatermarkError::Dht)?;
            node_code.insert(node, dict.intern(&value));
        }
        // Memoize only codes some row actually references: stale dictionary
        // entries must not raise errors the row loop never would.
        let mut present = vec![false; dict.dict().len()];
        for &code in dict.codes() {
            if let Some(slot) = present.get_mut(code as usize) {
                *slot = true;
            }
        }
        let mut memo = Vec::with_capacity(present.len());
        for (code, &p) in present.iter().enumerate() {
            if !p {
                memo.push(CellMemo::Ignore);
                continue;
            }
            let value = &dict.dict()[code];
            memo.push(match style {
                EmbedStyle::Hierarchical => hierarchical_cell_memo(pc, value),
                EmbedStyle::SingleLevel => single_level_cell_memo(pc, value),
            });
        }
        Ok(EmbedColumn { memo, node_code, bit_prefix, perm_prefix })
    }
}

/// The value-determined part of the hierarchical embedding decision.
fn hierarchical_cell_memo(pc: &PlanColumn<'_>, value: &Value) -> CellMemo {
    if value.is_null() {
        return CellMemo::Skip;
    }
    let Ok(target) = pc.binning.ultimate.node_for_value(pc.tree, value) else {
        return CellMemo::Skip;
    };
    match pc.binning.maximal.covering_node(pc.tree, target) {
        // Surface the error lazily: the row loop only raised it for
        // *selected* rows holding this value.
        Err(_) => CellMemo::Recheck { target },
        Ok(max_node) => {
            if pc.binning.ultimate.contains(max_node) {
                // No gap at this cell: permuting would exceed the usage
                // metrics (§5.1 special case).
                CellMemo::Skip
            } else {
                CellMemo::Start { node: max_node }
            }
        }
    }
}

/// The value-determined part of the single-level embedding decision.
fn single_level_cell_memo(pc: &PlanColumn<'_>, value: &Value) -> CellMemo {
    if value.is_null() {
        return CellMemo::Ignore;
    }
    match pc.binning.ultimate.node_for_value(pc.tree, value) {
        Ok(node) => CellMemo::Start { node },
        Err(_) => CellMemo::Ignore,
    }
}

/// Walk down from `start` (a maximal generalization node), at each level
/// picking the child whose sorted-set index parity equals `bit`, until an
/// ultimate generalization node is reached. The per-level index is the
/// shared 128-bit permutation value reduced by the sibling-set size —
/// exactly what the labeled per-level PRF call computed.
fn descend_wide(
    tree: &DomainHierarchyTree,
    ultimate: &GeneralizationSet,
    start: NodeId,
    perm_wide: u128,
    bit: bool,
) -> Result<NodeId, WatermarkError> {
    let mut node = start;
    loop {
        let children = tree.children(node).map_err(WatermarkError::Dht)?;
        if children.is_empty() {
            // Defensive: a leaf that is not an ultimate node. This cannot
            // happen for consistent binning state, but never loop.
            return Ok(node);
        }
        let raw = KeyedPrf::reduce_wide(perm_wide, children.len() as u64) as usize;
        let idx = set_parity(raw, bit, children.len());
        node = children[idx];
        if ultimate.contains(node) {
            return Ok(node);
        }
    }
}

/// Permute `node` within its sibling set so the chosen sibling's index parity
/// encodes `bit`, then descend to an ultimate node (the §5.2 baseline walk).
/// Returns `None` for a singleton sibling set or a sibling subtree holding no
/// ultimate node.
fn permute_wide(
    tree: &DomainHierarchyTree,
    ultimate: &GeneralizationSet,
    node: NodeId,
    perm_wide: u128,
    bit: bool,
) -> Result<Option<NodeId>, WatermarkError> {
    let siblings = tree.siblings(node).map_err(WatermarkError::Dht)?;
    if siblings.len() <= 1 {
        return Ok(None);
    }
    let raw = KeyedPrf::reduce_wide(perm_wide, siblings.len() as u64) as usize;
    let idx = set_parity(raw, bit, siblings.len());
    let mut target = siblings[idx];
    loop {
        if ultimate.contains(target) {
            return Ok(Some(target));
        }
        let children = tree.children(target).map_err(WatermarkError::Dht)?;
        if children.is_empty() {
            // The sibling's subtree lies above the ultimate level; give up on
            // this cell rather than emit an invalid value.
            return Ok(None);
        }
        let raw = KeyedPrf::reduce_wide(perm_wide, children.len() as u64) as usize;
        let idx = set_parity(raw, bit, children.len());
        target = children[idx];
    }
}

/// Per-column vote memo: what each distinct cell value contributes to
/// detection, resolved once per run.
#[derive(Debug, Clone)]
enum VoteMemo {
    /// Dictionary column: vote per code (`None` = no vote).
    Dict(Vec<Option<bool>>),
    /// Native integer column: vote per distinct value present in the rows.
    Int(HashMap<i64, Option<bool>>),
}

/// One planned column's precomputed detection state.
#[derive(Debug, Clone)]
struct DetectColumn {
    votes: VoteMemo,
    /// Precomputed `bit:<column>` label prefix.
    bit_prefix: Vec<u8>,
}

/// A prepared detection run: per-value vote memos plus the identity codec.
/// Immutable and shareable across worker threads; the table must not change
/// between `DetectKernel::prepare`-time and the last
/// [`DetectKernel::run_range`] call.
#[derive(Debug, Clone)]
pub struct DetectKernel {
    columns: Vec<DetectColumn>,
    ident: Option<IdentCodec>,
}

impl DetectKernel {
    /// Memoize each planned column's per-value vote with `cell_vote` (the
    /// scheme-specific value resolution) and freeze the identity codec.
    pub(crate) fn prepare(
        plan: &DetectPlan<'_>,
        table: &Table,
        cell_vote: impl Fn(&PlanColumn<'_>, &Value) -> Result<Option<bool>, WatermarkError>,
    ) -> Result<Self, WatermarkError> {
        let mut columns = Vec::with_capacity(plan.core.columns.len());
        for pc in &plan.core.columns {
            let bit_prefix = KeyedPrf::label_prefix(&format!("bit:{}", pc.binning.column));
            let votes = match table.columns()[pc.index].data() {
                ColumnData::Int(values) => {
                    let mut memo = HashMap::new();
                    for &v in values {
                        if let std::collections::hash_map::Entry::Vacant(e) = memo.entry(v) {
                            e.insert(cell_vote(pc, &Value::Int(v))?);
                        }
                    }
                    VoteMemo::Int(memo)
                }
                ColumnData::Dict { dict, codes } => {
                    let mut present = vec![false; dict.len()];
                    for &code in codes {
                        if let Some(slot) = present.get_mut(code as usize) {
                            *slot = true;
                        }
                    }
                    let mut memo = Vec::with_capacity(dict.len());
                    for (code, &p) in present.iter().enumerate() {
                        // Stale entries no row references cast no vote and
                        // must not raise errors.
                        memo.push(if p { cell_vote(pc, &dict[code])? } else { None });
                    }
                    VoteMemo::Dict(memo)
                }
            };
            columns.push(DetectColumn { votes, bit_prefix });
        }
        let ident = plan.core.identity.as_ref().map(|id| IdentCodec::build(id, table));
        Ok(DetectKernel { columns, ident })
    }

    /// Collect the votes of the rows in `range` into a fresh tally. Tallies
    /// of disjoint ranges merge (in any order) to exactly the sequential
    /// run's tally.
    pub fn run_range(
        &self,
        plan: &DetectPlan<'_>,
        table: &Table,
        range: Range<usize>,
    ) -> Result<DetectionTally, WatermarkError> {
        let mut tally = DetectionTally::new(plan.wmd_len());
        let Some(ident) = &self.ident else {
            // The suspect table lost the virtual-key columns: no tuple can be
            // re-identified, so the run legitimately collects zero votes.
            return Ok(tally);
        };
        let columns = table.columns();
        let prf = plan.core.selector.permutation_prf();
        let wmd_len = plan.wmd_len() as u64;
        let mut buf = Vec::new();
        for row in range {
            buf.clear();
            ident.write(columns, row, &mut buf);
            if !plan.core.selector.selects(&buf) {
                continue;
            }
            tally.note_selected();
            for (dc, pc) in self.columns.iter().zip(&plan.core.columns) {
                let vote = match (&dc.votes, columns[pc.index].data()) {
                    (VoteMemo::Dict(memo), ColumnData::Dict { codes, .. }) => {
                        memo.get(codes[row] as usize).copied().flatten()
                    }
                    (VoteMemo::Int(memo), ColumnData::Int(values)) => {
                        memo.get(&values[row]).copied().flatten()
                    }
                    // Layout changed between prepare and run (contract
                    // violation): treat as attacker garbage, no vote.
                    _ => None,
                };
                let Some(bit) = vote else { continue };
                let pos =
                    KeyedPrf::reduce_wide(prf.prefixed_value_wide(&dc.bit_prefix, &buf), wmd_len);
                tally.vote(pos as usize, bit, 1.0)?;
            }
        }
        Ok(tally)
    }
}

/// The hierarchical scheme's per-value detection vote: climb from the
/// value's node to its maximal generalization node and fold the per-level
/// parities by (optionally weighted) majority.
pub(crate) fn hierarchical_cell_vote(
    pc: &PlanColumn<'_>,
    value: &Value,
    weighted: bool,
) -> Result<Option<bool>, WatermarkError> {
    if value.is_null() {
        return Ok(None);
    }
    // Attacker garbage: no vote.
    let Ok(node) = pc.tree.node_for_value(value) else { return Ok(None) };
    let Some(level_bits) = climb_and_read(pc.tree, &pc.binning.maximal, node)? else {
        return Ok(None);
    };
    if level_bits.is_empty() {
        return Ok(None);
    }
    let bit = if weighted {
        weighted_majority(&level_bits, &level_weights(level_bits.len()))?
    } else {
        majority(&level_bits)
    };
    Ok(Some(bit))
}

/// The single-level scheme's per-value detection vote: the parity of the
/// value's ultimate-node index within its sibling set.
pub(crate) fn single_level_cell_vote(
    pc: &PlanColumn<'_>,
    value: &Value,
) -> Result<Option<bool>, WatermarkError> {
    let Ok(node) = pc.tree.node_for_value(value) else { return Ok(None) };
    if !pc.binning.ultimate.contains(node) {
        // The value no longer sits at the ultimate level: the single-level
        // bit is gone.
        return Ok(None);
    }
    let siblings = pc.tree.siblings(node).map_err(WatermarkError::Dht)?;
    if siblings.len() <= 1 {
        // A singleton sibling set carries no information (the embedder
        // skipped it too).
        return Ok(None);
    }
    let Some(idx) = DomainHierarchyTree::index_in(node, &siblings) else { return Ok(None) };
    Ok(Some(idx % 2 == 1))
}

//! Error type for DHT construction and traversal.

use crate::tree::NodeId;

/// Errors raised while building or traversing a domain hierarchy tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhtError {
    /// A node id does not belong to the tree.
    UnknownNode(NodeId),
    /// The requested label does not exist in the tree.
    UnknownLabel(String),
    /// A value has no corresponding leaf (out of domain).
    ValueOutOfDomain(String),
    /// A numeric tree was requested with invalid interval bounds.
    InvalidInterval {
        /// Offending lower bound.
        lo: i64,
        /// Offending upper bound.
        hi: i64,
    },
    /// The supplied intervals do not tile the domain contiguously.
    NonContiguousIntervals {
        /// Where the previous interval ended.
        expected_start: i64,
        /// Where the offending interval started.
        actual_start: i64,
    },
    /// A categorical tree was built with a duplicate label.
    DuplicateLabel(String),
    /// A set of nodes is not a valid generalization of the tree.
    InvalidGeneralization(String),
    /// A numeric builder needs at least one leaf interval.
    EmptyDomain,
}

impl std::fmt::Display for DhtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhtError::UnknownNode(id) => write!(f, "unknown node id {}", id.0),
            DhtError::UnknownLabel(l) => write!(f, "unknown label: {l}"),
            DhtError::ValueOutOfDomain(v) => write!(f, "value out of domain: {v}"),
            DhtError::InvalidInterval { lo, hi } => {
                write!(f, "invalid interval [{lo},{hi})")
            }
            DhtError::NonContiguousIntervals { expected_start, actual_start } => write!(
                f,
                "intervals must tile the domain contiguously: expected start {expected_start}, got {actual_start}"
            ),
            DhtError::DuplicateLabel(l) => write!(f, "duplicate label: {l}"),
            DhtError::InvalidGeneralization(msg) => write!(f, "invalid generalization: {msg}"),
            DhtError::EmptyDomain => write!(f, "numeric domain needs at least one interval"),
        }
    }
}

impl std::error::Error for DhtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DhtError::UnknownLabel("x".into()).to_string().contains('x'));
        assert!(DhtError::InvalidInterval { lo: 5, hi: 1 }.to_string().contains("[5,1)"));
        assert!(DhtError::NonContiguousIntervals { expected_start: 10, actual_start: 12 }
            .to_string()
            .contains("10"));
        assert!(DhtError::EmptyDomain.to_string().contains("interval"));
    }
}

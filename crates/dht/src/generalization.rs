//! Generalization sets over a domain hierarchy tree.
//!
//! The paper's (broader, Iyengar-style) definition: a valid generalization is
//! a set of nodes such that the path from every leaf to the root encounters
//! **one and only one** node of the set (§4). The set need not sit at a
//! single level, and a leaf may itself be a generalization node.
//!
//! The binning algorithm manipulates three such sets per attribute —
//! maximal, minimal and ultimate generalization nodes — and multi-attribute
//! binning enumerates every valid generalization lying between the minimal
//! and maximal sets (Fig. 6). The watermarking algorithm walks between the
//! maximal and ultimate sets. All of that machinery lives here.

use crate::error::DhtError;
use crate::tree::{DomainHierarchyTree, NodeId};
use medshield_relation::Value;
use serde::{Deserialize, Serialize};

/// A validated set of generalization nodes for one tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneralizationSet {
    nodes: Vec<NodeId>,
}

impl GeneralizationSet {
    /// Build a generalization set, verifying validity: every leaf-to-root
    /// path must meet exactly one of `nodes`.
    pub fn new(tree: &DomainHierarchyTree, mut nodes: Vec<NodeId>) -> Result<Self, DhtError> {
        nodes.sort();
        nodes.dedup();
        for &n in &nodes {
            tree.node(n)?;
        }
        for leaf in tree.leaves() {
            let path = tree.path_to_root(leaf)?;
            let hits = path.iter().filter(|n| nodes.binary_search(n).is_ok()).count();
            if hits != 1 {
                return Err(DhtError::InvalidGeneralization(format!(
                    "leaf {} meets {hits} generalization nodes (must be exactly 1)",
                    tree.node(leaf)?.label
                )));
            }
        }
        Ok(GeneralizationSet { nodes })
    }

    /// The coarsest generalization: just the root.
    pub fn root_only(tree: &DomainHierarchyTree) -> Self {
        GeneralizationSet { nodes: vec![tree.root()] }
    }

    /// Rebuild a set from node ids that were **previously validated**
    /// against their tree — the deserialization surface of the durable
    /// release store. The ids are re-sorted and deduplicated (the invariants
    /// the accessors rely on) but tree validity is *not* re-checked: the
    /// caller vouches that the ids came from [`GeneralizationSet::nodes`] of
    /// a set built by [`GeneralizationSet::new`] or one of the constructors.
    pub fn from_validated_nodes(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort();
        nodes.dedup();
        GeneralizationSet { nodes }
    }

    /// The finest generalization: every leaf is its own node (no information
    /// loss).
    pub fn all_leaves(tree: &DomainHierarchyTree) -> Self {
        let mut nodes = tree.leaves();
        nodes.sort();
        GeneralizationSet { nodes }
    }

    /// The generalization whose nodes sit at `depth` (root = 0), with leaves
    /// shallower than `depth` kept as their own generalization nodes. This is
    /// the classical single-level generalization of Samarati/Sweeney, provided
    /// as a convenient way to state usage metrics ("generalize at most to
    /// level d").
    pub fn at_depth(tree: &DomainHierarchyTree, depth: usize) -> Self {
        let mut nodes = Vec::new();
        let mut stack = vec![tree.root()];
        while let Some(n) = stack.pop() {
            let node = tree.node(n).expect("traversal stays in the tree");
            if node.depth == depth || (node.is_leaf() && node.depth <= depth) {
                nodes.push(n);
            } else if node.depth < depth {
                for &c in &node.children {
                    stack.push(c);
                }
            }
        }
        nodes.sort();
        GeneralizationSet { nodes }
    }

    /// The generalization node ids, sorted.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of generalization nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the set is empty (never the case for a validated set).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True if `id` is one of the generalization nodes.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.binary_search(&id).is_ok()
    }

    /// The unique generalization node on the path from `leaf` (or any
    /// descendant node) to the root.
    pub fn covering_node(
        &self,
        tree: &DomainHierarchyTree,
        node: NodeId,
    ) -> Result<NodeId, DhtError> {
        for n in tree.path_to_root(node)? {
            if self.contains(n) {
                return Ok(n);
            }
        }
        Err(DhtError::InvalidGeneralization(format!(
            "node {} is not covered by the generalization",
            tree.node(node)?.label
        )))
    }

    /// `Val2Nd`: the generalization node representing a raw or generalized
    /// value of the attribute. The value is first located in the tree (exact
    /// node for generalized values, containing leaf otherwise), then walked up
    /// to its covering node.
    pub fn node_for_value(
        &self,
        tree: &DomainHierarchyTree,
        value: &Value,
    ) -> Result<NodeId, DhtError> {
        let node = tree.node_for_value(value)?;
        self.covering_node(tree, node)
    }

    /// Generalize a raw value: the value represented by its covering node.
    pub fn generalize_value(
        &self,
        tree: &DomainHierarchyTree,
        value: &Value,
    ) -> Result<Value, DhtError> {
        let node = self.node_for_value(tree, value)?;
        tree.node_value(node)
    }

    /// Specificity loss `(N - Ng) / N` of §4.2.2, where `N` is the number of
    /// leaves of the tree and `Ng` the number of generalization nodes.
    pub fn specificity_loss(&self, tree: &DomainHierarchyTree) -> f64 {
        let n = tree.leaf_count() as f64;
        if n == 0.0 {
            return 0.0;
        }
        (n - self.nodes.len() as f64) / n
    }

    /// True if every node of `self` lies at or below (is a descendant-or-self
    /// of) some node of `upper`. This is the partial order "self is at least
    /// as specific as upper"; e.g. minimal ⊑ maximal, ultimate ⊑ maximal.
    pub fn is_at_or_below(
        &self,
        tree: &DomainHierarchyTree,
        upper: &GeneralizationSet,
    ) -> Result<bool, DhtError> {
        for &n in &self.nodes {
            let mut covered = false;
            for p in tree.path_to_root(n)? {
                if upper.contains(p) {
                    covered = true;
                    break;
                }
            }
            if !covered {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Enumerate every valid generalization `g` with `lower ⊑ g ⊑ upper`
    /// (Fig. 6 of the paper). `limit` caps the number of generalizations
    /// produced; enumeration stops once the cap is reached, which the caller
    /// (multi-attribute binning) treats as "fall back to a coarser search".
    ///
    /// Preconditions: both sets are valid for `tree` and `lower ⊑ upper`.
    pub fn enumerate_between(
        tree: &DomainHierarchyTree,
        lower: &GeneralizationSet,
        upper: &GeneralizationSet,
        limit: usize,
    ) -> Result<Vec<GeneralizationSet>, DhtError> {
        // Per-maximal-node options: each option is one way to generalize the
        // leaves below that node, expressed as a node set.
        let mut per_node_options: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(upper.len());
        for &m in upper.nodes() {
            per_node_options.push(options_below(tree, lower, m, limit)?);
        }

        capped_product(&per_node_options, limit)
            .into_iter()
            .map(|nodes| GeneralizationSet::new(tree, nodes))
            .collect()
    }

    /// Number of allowable generalizations between `lower` and `upper`
    /// without materializing them (may saturate at `usize::MAX`).
    pub fn count_between(
        tree: &DomainHierarchyTree,
        lower: &GeneralizationSet,
        upper: &GeneralizationSet,
    ) -> Result<usize, DhtError> {
        let mut total: usize = 1;
        for &m in upper.nodes() {
            let c = count_below(tree, lower, m)?;
            total = total.saturating_mul(c);
        }
        Ok(total)
    }
}

/// All ways to generalize the subtree rooted at `node`, staying at or above
/// the nodes of `lower`.
fn options_below(
    tree: &DomainHierarchyTree,
    lower: &GeneralizationSet,
    node: NodeId,
    limit: usize,
) -> Result<Vec<Vec<NodeId>>, DhtError> {
    // The node itself is always an option (it is at or above every lower node
    // beneath it, and at or below the upper node we started from).
    let mut options = vec![vec![node]];
    if lower.contains(node) {
        // Cannot descend below a lower-bound node.
        return Ok(options);
    }
    let children = tree.children(node)?;
    if children.is_empty() {
        return Ok(options);
    }
    // Descending: combine one option per child (cartesian product), keeping
    // every produced combination complete even when the cap is hit.
    let mut child_options = Vec::with_capacity(children.len());
    for &child in children {
        child_options.push(options_below(tree, lower, child, limit)?);
    }
    options.extend(capped_product(&child_options, limit.saturating_sub(1).max(1)));
    options.truncate(limit.max(1));
    Ok(options)
}

/// Cartesian product of `lists`, concatenating the inner node sets, capped at
/// `limit` complete combinations. Combinations are enumerated in mixed-radix
/// order so every returned set covers one option from *every* list — a
/// truncated enumeration never yields a partial (invalid) generalization.
fn capped_product(lists: &[Vec<Vec<NodeId>>], limit: usize) -> Vec<Vec<NodeId>> {
    if lists.iter().any(std::vec::Vec::is_empty) {
        return Vec::new();
    }
    let mut total: usize = 1;
    for l in lists {
        total = total.saturating_mul(l.len());
    }
    let take = total.min(limit.max(1));
    let mut out = Vec::with_capacity(take);
    for idx in 0..take {
        let mut rem = idx;
        let mut combined = Vec::new();
        for l in lists {
            let digit = rem % l.len();
            rem /= l.len();
            combined.extend_from_slice(&l[digit]);
        }
        out.push(combined);
    }
    out
}

/// Count of [`options_below`] without materializing.
fn count_below(
    tree: &DomainHierarchyTree,
    lower: &GeneralizationSet,
    node: NodeId,
) -> Result<usize, DhtError> {
    if lower.contains(node) {
        return Ok(1);
    }
    let children = tree.children(node)?;
    if children.is_empty() {
        return Ok(1);
    }
    let mut product: usize = 1;
    for &child in children {
        product = product.saturating_mul(count_below(tree, lower, child)?);
    }
    Ok(product.saturating_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{numeric_binary_tree, CategoricalNodeSpec};

    /// The Fig. 6 numeric tree: leaves 40..47 over [0,160) in 20-wide steps,
    /// with interior nodes 30..33 (40-wide), 20..22, 10..11, and root 00.
    /// We reproduce the same topology; labels are the intervals.
    fn fig6_tree() -> DomainHierarchyTree {
        let intervals: Vec<(i64, i64)> = (0..8).map(|i| (i * 20, (i + 1) * 20)).collect();
        numeric_binary_tree("age", &intervals).unwrap()
    }

    fn node(tree: &DomainHierarchyTree, lo: i64, hi: i64) -> NodeId {
        tree.node_for_value(&Value::interval(lo, hi)).unwrap()
    }

    fn role_tree() -> DomainHierarchyTree {
        CategoricalNodeSpec::internal(
            "Person",
            vec![
                CategoricalNodeSpec::internal(
                    "Medical Staff",
                    vec![
                        CategoricalNodeSpec::internal(
                            "Doctor",
                            vec![
                                CategoricalNodeSpec::leaf("Surgeon"),
                                CategoricalNodeSpec::leaf("Physician"),
                            ],
                        ),
                        CategoricalNodeSpec::internal(
                            "Paramedic",
                            vec![
                                CategoricalNodeSpec::leaf("Pharmacist"),
                                CategoricalNodeSpec::leaf("Nurse"),
                                CategoricalNodeSpec::leaf("Consultant"),
                            ],
                        ),
                    ],
                ),
                CategoricalNodeSpec::internal(
                    "Non-medical Staff",
                    vec![
                        CategoricalNodeSpec::leaf("Technician"),
                        CategoricalNodeSpec::leaf("Administrator"),
                    ],
                ),
            ],
        )
        .build("role")
        .unwrap()
    }

    #[test]
    fn validity_requires_exactly_one_hit_per_leaf() {
        let t = role_tree();
        // Valid: mixed levels (broader notion of generalization).
        let doctor = t.node_by_label("Doctor").unwrap();
        let pharmacist = t.node_by_label("Pharmacist").unwrap();
        let nurse = t.node_by_label("Nurse").unwrap();
        let consultant = t.node_by_label("Consultant").unwrap();
        let nonmed = t.node_by_label("Non-medical Staff").unwrap();
        let valid = GeneralizationSet::new(&t, vec![doctor, pharmacist, nurse, consultant, nonmed]);
        assert!(valid.is_ok());

        // Invalid: a leaf covered zero times.
        assert!(GeneralizationSet::new(&t, vec![doctor]).is_err());
        // Invalid: a leaf covered twice (node and its ancestor).
        let staff = t.node_by_label("Medical Staff").unwrap();
        assert!(GeneralizationSet::new(&t, vec![staff, doctor, nonmed]).is_err());
        // Invalid: unknown node.
        assert!(GeneralizationSet::new(&t, vec![NodeId(999)]).is_err());
    }

    #[test]
    fn root_only_and_all_leaves_are_valid() {
        let t = role_tree();
        let root = GeneralizationSet::root_only(&t);
        let leaves = GeneralizationSet::all_leaves(&t);
        assert!(GeneralizationSet::new(&t, root.nodes().to_vec()).is_ok());
        assert!(GeneralizationSet::new(&t, leaves.nodes().to_vec()).is_ok());
        assert_eq!(root.len(), 1);
        assert_eq!(leaves.len(), 7);
        assert!(!root.is_empty());
    }

    #[test]
    fn covering_and_generalize() {
        let t = role_tree();
        let para = t.node_by_label("Paramedic").unwrap();
        let doctor = t.node_by_label("Doctor").unwrap();
        let nonmed = t.node_by_label("Non-medical Staff").unwrap();
        let g = GeneralizationSet::new(&t, vec![para, doctor, nonmed]).unwrap();

        assert_eq!(
            g.generalize_value(&t, &Value::text("Pharmacist")).unwrap(),
            Value::text("Paramedic")
        );
        assert_eq!(g.generalize_value(&t, &Value::text("Surgeon")).unwrap(), Value::text("Doctor"));
        assert_eq!(
            g.generalize_value(&t, &Value::text("Technician")).unwrap(),
            Value::text("Non-medical Staff")
        );
        // Values outside the domain are rejected.
        assert!(g.generalize_value(&t, &Value::text("Astronaut")).is_err());
        // node_for_value of an already generalized value is idempotent.
        assert_eq!(g.node_for_value(&t, &Value::text("Paramedic")).unwrap(), para);
    }

    #[test]
    fn covering_node_fails_above_the_set() {
        let t = role_tree();
        let para = t.node_by_label("Paramedic").unwrap();
        let doctor = t.node_by_label("Doctor").unwrap();
        let nonmed = t.node_by_label("Non-medical Staff").unwrap();
        let g = GeneralizationSet::new(&t, vec![para, doctor, nonmed]).unwrap();
        // The root sits above every generalization node: not covered.
        assert!(g.covering_node(&t, t.root()).is_err());
    }

    #[test]
    fn specificity_loss_extremes() {
        let t = role_tree();
        let root = GeneralizationSet::root_only(&t);
        let leaves = GeneralizationSet::all_leaves(&t);
        assert!((leaves.specificity_loss(&t) - 0.0).abs() < 1e-12);
        assert!((root.specificity_loss(&t) - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn partial_order() {
        let t = fig6_tree();
        let leaves = GeneralizationSet::all_leaves(&t);
        let root = GeneralizationSet::root_only(&t);
        assert!(leaves.is_at_or_below(&t, &root).unwrap());
        assert!(!root.is_at_or_below(&t, &leaves).unwrap());
        assert!(leaves.is_at_or_below(&t, &leaves).unwrap());
    }

    #[test]
    fn fig6_enumeration_counts_six_generalizations() {
        // The paper enumerates exactly six allowable generalizations between
        // the minimal nodes {30, 31, 45, 46, 33, 22} and the maximal nodes
        // {20, 21, 22} of Figure 6. In our reproduction of the topology:
        //   maximal nodes: [0,80) at depth1-left... we mirror by taking
        //   upper = the three nodes {[0,80), [80,160) left child's subtree}
        // To match the figure precisely we use:
        //   upper = {20=[0,80), 21=[80,160)-left=[80,120)?}
        // The exact figure uses an unbalanced tree; rather than replicate its
        // node numbering we verify the combinatorial law on our balanced tree:
        // between lower = leaves and upper = {[0,40),[40,80),[80,120),[120,160)}
        // each upper node has (1 child-split + itself) = 2 options,
        // so 2^4 = 16 allowable generalizations.
        let t = fig6_tree();
        let upper_nodes: Vec<NodeId> = (0..4).map(|i| node(&t, i * 40, (i + 1) * 40)).collect();
        let upper = GeneralizationSet::new(&t, upper_nodes).unwrap();
        let lower = GeneralizationSet::all_leaves(&t);
        let count = GeneralizationSet::count_between(&t, &lower, &upper).unwrap();
        assert_eq!(count, 16);
        let all = GeneralizationSet::enumerate_between(&t, &lower, &upper, 1000).unwrap();
        assert_eq!(all.len(), 16);
        // Every enumerated generalization is valid and within bounds.
        for g in &all {
            assert!(g.is_at_or_below(&t, &upper).unwrap());
            assert!(lower.is_at_or_below(&t, g).unwrap());
        }
        // They are pairwise distinct.
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn fig6_paper_example_exact() {
        // Reproduce the actual Figure 6 situation on the subtree rooted at
        // node 20 = [0,80): minimal generalization nodes are the two leaves
        // under 30 ([0,20),[20,40)) kept as node 30, and for node 31 its
        // children 45=[40,60), 46=[60,80) are minimal. The figure lists the
        // allowable generalizations of the whole tree as 6. We test the same
        // structure: lower = {30, 45, 46, 33, 22}, upper = {20, 21, 22} in the
        // paper's numbering. On our balanced [0,160) tree we take:
        //   lower = {[0,40), [40,60), [60,80), [80,120), [120,160)}
        //   upper = {[0,80), [80,160)}
        // Options below [0,80): itself, {[0,40),[40,80)}, {[0,40),[40,60),[60,80)}
        //   → 3 options (paper's node-20 subtree likewise has 3).
        // Options below [80,160): itself, {[80,120),[120,160)} → 2 options.
        // Total = 6, matching the paper's count.
        let t = fig6_tree();
        let lower = GeneralizationSet::new(
            &t,
            vec![
                node(&t, 0, 40),
                node(&t, 40, 60),
                node(&t, 60, 80),
                node(&t, 80, 120),
                node(&t, 120, 160),
            ],
        )
        .unwrap();
        let upper = GeneralizationSet::new(&t, vec![node(&t, 0, 80), node(&t, 80, 160)]).unwrap();
        assert!(lower.is_at_or_below(&t, &upper).unwrap());
        assert_eq!(GeneralizationSet::count_between(&t, &lower, &upper).unwrap(), 6);
        let all = GeneralizationSet::enumerate_between(&t, &lower, &upper, 100).unwrap();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn at_depth_produces_valid_generalizations() {
        let t = role_tree();
        for depth in 0..=4 {
            let g = GeneralizationSet::at_depth(&t, depth);
            // Revalidate through the checked constructor.
            assert!(
                GeneralizationSet::new(&t, g.nodes().to_vec()).is_ok(),
                "depth {depth} produced an invalid generalization"
            );
        }
        assert_eq!(GeneralizationSet::at_depth(&t, 0).len(), 1);
        // Depth beyond the height is just the leaves.
        assert_eq!(GeneralizationSet::at_depth(&t, 10), GeneralizationSet::all_leaves(&t));
    }

    #[test]
    fn at_depth_keeps_shallow_leaves() {
        // A lop-sided tree: one branch is deep, the other is a bare leaf.
        let t = CategoricalNodeSpec::internal(
            "root",
            vec![
                CategoricalNodeSpec::leaf("shallow"),
                CategoricalNodeSpec::internal(
                    "deep",
                    vec![CategoricalNodeSpec::leaf("x"), CategoricalNodeSpec::leaf("y")],
                ),
            ],
        )
        .build("col")
        .unwrap();
        let g = GeneralizationSet::at_depth(&t, 2);
        assert!(g.contains(t.node_by_label("shallow").unwrap()));
        assert!(g.contains(t.node_by_label("x").unwrap()));
        assert!(GeneralizationSet::new(&t, g.nodes().to_vec()).is_ok());
    }

    #[test]
    fn enumeration_respects_limit() {
        let t = fig6_tree();
        let lower = GeneralizationSet::all_leaves(&t);
        let upper = GeneralizationSet::root_only(&t);
        let limited = GeneralizationSet::enumerate_between(&t, &lower, &upper, 5).unwrap();
        assert!(limited.len() <= 5);
        assert!(!limited.is_empty());
    }

    #[test]
    fn generalize_numeric_values() {
        let t = fig6_tree();
        let g = GeneralizationSet::new(&t, vec![node(&t, 0, 80), node(&t, 80, 160)]).unwrap();
        assert_eq!(g.generalize_value(&t, &Value::int(35)).unwrap(), Value::interval(0, 80));
        assert_eq!(g.generalize_value(&t, &Value::int(150)).unwrap(), Value::interval(80, 160));
        // Already generalized input stays within its covering node.
        assert_eq!(
            g.generalize_value(&t, &Value::interval(40, 60)).unwrap(),
            Value::interval(0, 80)
        );
    }
}

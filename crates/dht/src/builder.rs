//! Builders for categorical and numeric domain hierarchy trees.
//!
//! * Categorical trees are described by a nested [`CategoricalNodeSpec`]
//!   (Fig. 1 of the paper is reproduced in the tests).
//! * Numeric trees follow Fig. 3: the domain is divided into a series of
//!   disjoint, contiguous intervals which are then pairwise combined into a
//!   binary tree. Intervals need not be of equal size
//!   ([`numeric_binary_tree`]); [`numeric_uniform_tree`] is a convenience for
//!   equal-width leaves.

use crate::error::DhtError;
use crate::tree::{DhtKind, DomainHierarchyTree, Node, NodeId};
use std::collections::HashSet;

/// Declarative description of a categorical DHT node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoricalNodeSpec {
    /// Node label (must be unique within the tree).
    pub label: String,
    /// Child specifications; empty for leaves.
    pub children: Vec<CategoricalNodeSpec>,
}

impl CategoricalNodeSpec {
    /// A leaf node.
    pub fn leaf(label: impl Into<String>) -> Self {
        CategoricalNodeSpec { label: label.into(), children: Vec::new() }
    }

    /// An internal node with children.
    pub fn internal(label: impl Into<String>, children: Vec<CategoricalNodeSpec>) -> Self {
        CategoricalNodeSpec { label: label.into(), children }
    }

    /// Materialize the spec into a [`DomainHierarchyTree`] for `attribute`.
    ///
    /// Children are sorted by label so the "sorted set S" of the
    /// watermarking algorithm is deterministic.
    pub fn build(&self, attribute: impl Into<String>) -> Result<DomainHierarchyTree, DhtError> {
        let mut nodes: Vec<Node> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let root = Self::add(self, None, 0, &mut nodes, &mut seen)?;
        Ok(DomainHierarchyTree::from_parts(attribute.into(), DhtKind::Categorical, nodes, root))
    }

    fn add(
        spec: &CategoricalNodeSpec,
        parent: Option<NodeId>,
        depth: usize,
        nodes: &mut Vec<Node>,
        seen: &mut HashSet<String>,
    ) -> Result<NodeId, DhtError> {
        if !seen.insert(spec.label.clone()) {
            return Err(DhtError::DuplicateLabel(spec.label.clone()));
        }
        let id = NodeId(nodes.len() as u32);
        nodes.push(Node {
            id,
            label: spec.label.clone(),
            interval: None,
            parent,
            children: Vec::new(),
            depth,
        });
        // Children are added in label order for a deterministic sorted set.
        let mut ordered: Vec<&CategoricalNodeSpec> = spec.children.iter().collect();
        ordered.sort_by(|a, b| a.label.cmp(&b.label));
        let mut child_ids = Vec::with_capacity(ordered.len());
        for child in ordered {
            child_ids.push(Self::add(child, Some(id), depth + 1, nodes, seen)?);
        }
        nodes[id.0 as usize].children = child_ids;
        Ok(id)
    }
}

/// Build a numeric binary DHT from explicit leaf intervals.
///
/// The intervals must be non-empty, contiguous and in increasing order; they
/// need not be of equal size (§4: "intervals should be of moderate size and
/// they need not to be of equal size"). Adjacent nodes are combined pairwise
/// level by level until a single root remains, exactly as in Fig. 3. With an
/// odd number of nodes at some level, the last node is promoted unchanged.
pub fn numeric_binary_tree(
    attribute: impl Into<String>,
    intervals: &[(i64, i64)],
) -> Result<DomainHierarchyTree, DhtError> {
    if intervals.is_empty() {
        return Err(DhtError::EmptyDomain);
    }
    for &(lo, hi) in intervals {
        if lo >= hi {
            return Err(DhtError::InvalidInterval { lo, hi });
        }
    }
    for w in intervals.windows(2) {
        if w[1].0 != w[0].1 {
            return Err(DhtError::NonContiguousIntervals {
                expected_start: w[0].1,
                actual_start: w[1].0,
            });
        }
    }

    // Create leaf nodes first, then combine pairwise upward. Depths are
    // assigned top-down in a second pass once the height is known.
    let mut nodes: Vec<Node> = Vec::new();
    let mut level: Vec<NodeId> = intervals
        .iter()
        .map(|&(lo, hi)| {
            let id = NodeId(nodes.len() as u32);
            nodes.push(Node {
                id,
                label: format!("[{lo},{hi})"),
                interval: Some((lo, hi)),
                parent: None,
                children: Vec::new(),
                depth: 0,
            });
            id
        })
        .collect();

    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2 + 1);
        let mut i = 0;
        while i < level.len() {
            if i + 1 < level.len() {
                let left = level[i];
                let right = level[i + 1];
                let lo = nodes[left.0 as usize].interval.expect("numeric node").0;
                let hi = nodes[right.0 as usize].interval.expect("numeric node").1;
                let id = NodeId(nodes.len() as u32);
                nodes.push(Node {
                    id,
                    label: format!("[{lo},{hi})"),
                    interval: Some((lo, hi)),
                    parent: None,
                    children: vec![left, right],
                    depth: 0,
                });
                nodes[left.0 as usize].parent = Some(id);
                nodes[right.0 as usize].parent = Some(id);
                next.push(id);
                i += 2;
            } else {
                // Odd node out: promote it to the next level unchanged.
                next.push(level[i]);
                i += 1;
            }
        }
        level = next;
    }
    let root = level[0];

    // Assign depths top-down.
    let mut stack = vec![(root, 0usize)];
    while let Some((id, depth)) = stack.pop() {
        nodes[id.0 as usize].depth = depth;
        let children = nodes[id.0 as usize].children.clone();
        for c in children {
            stack.push((c, depth + 1));
        }
    }

    Ok(DomainHierarchyTree::from_parts(attribute.into(), DhtKind::Numeric, nodes, root))
}

/// Build a numeric binary DHT over `[lo, hi)` with `leaves` equal-width leaf
/// intervals (the last leaf absorbs any remainder).
pub fn numeric_uniform_tree(
    attribute: impl Into<String>,
    lo: i64,
    hi: i64,
    leaves: usize,
) -> Result<DomainHierarchyTree, DhtError> {
    if lo >= hi {
        return Err(DhtError::InvalidInterval { lo, hi });
    }
    if leaves == 0 {
        return Err(DhtError::EmptyDomain);
    }
    let span = hi - lo;
    let width = (span / leaves as i64).max(1);
    let mut intervals = Vec::with_capacity(leaves);
    let mut start = lo;
    for i in 0..leaves {
        let end = if i + 1 == leaves { hi } else { (start + width).min(hi) };
        if start >= end {
            break;
        }
        intervals.push((start, end));
        start = end;
    }
    numeric_binary_tree(attribute, &intervals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_relation::Value;

    #[test]
    fn categorical_duplicate_labels_rejected() {
        let spec = CategoricalNodeSpec::internal(
            "root",
            vec![CategoricalNodeSpec::leaf("a"), CategoricalNodeSpec::leaf("a")],
        );
        assert_eq!(spec.build("x").unwrap_err(), DhtError::DuplicateLabel("a".into()));
    }

    #[test]
    fn categorical_children_sorted() {
        let spec = CategoricalNodeSpec::internal(
            "root",
            vec![
                CategoricalNodeSpec::leaf("zebra"),
                CategoricalNodeSpec::leaf("ant"),
                CategoricalNodeSpec::leaf("mule"),
            ],
        );
        let tree = spec.build("animals").unwrap();
        let labels: Vec<String> = tree
            .children(tree.root())
            .unwrap()
            .iter()
            .map(|&c| tree.node(c).unwrap().label.clone())
            .collect();
        assert_eq!(labels, vec!["ant", "mule", "zebra"]);
    }

    #[test]
    fn single_leaf_categorical_tree() {
        let tree = CategoricalNodeSpec::leaf("only").build("x").unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.root(), tree.leaves()[0]);
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn fig3_age_tree() {
        // Figure 3: [0,150) split into 8 intervals, pairwise combined.
        let intervals =
            [(0, 20), (20, 40), (40, 60), (60, 80), (80, 100), (100, 120), (120, 140), (140, 150)];
        let tree = numeric_binary_tree("age", &intervals).unwrap();
        assert_eq!(tree.leaf_count(), 8);
        assert_eq!(tree.node_count(), 15);
        assert_eq!(tree.height(), 3);
        assert_eq!(tree.node_value(tree.root()).unwrap(), Value::interval(0, 150));
        // Interior nodes union their children.
        let n = tree.node_for_value(&Value::interval(0, 40)).unwrap();
        let kids = tree.children(n).unwrap();
        assert_eq!(kids.len(), 2);
        assert_eq!(tree.node_value(kids[0]).unwrap(), Value::interval(0, 20));
        assert_eq!(tree.node_value(kids[1]).unwrap(), Value::interval(20, 40));
    }

    #[test]
    fn numeric_rejects_bad_intervals() {
        assert!(matches!(
            numeric_binary_tree("x", &[(10, 5)]),
            Err(DhtError::InvalidInterval { .. })
        ));
        assert!(matches!(
            numeric_binary_tree("x", &[(0, 5), (6, 10)]),
            Err(DhtError::NonContiguousIntervals { .. })
        ));
        assert!(matches!(numeric_binary_tree("x", &[]), Err(DhtError::EmptyDomain)));
    }

    #[test]
    fn numeric_odd_number_of_leaves() {
        let tree = numeric_binary_tree("x", &[(0, 10), (10, 20), (20, 30)]).unwrap();
        assert_eq!(tree.leaf_count(), 3);
        assert_eq!(tree.node_value(tree.root()).unwrap(), Value::interval(0, 30));
        // Every leaf reaches the root.
        for leaf in tree.leaves() {
            assert!(tree.is_ancestor_or_self(tree.root(), leaf).unwrap());
        }
    }

    #[test]
    fn numeric_single_interval() {
        let tree = numeric_binary_tree("x", &[(0, 100)]).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.root(), tree.leaves()[0]);
    }

    #[test]
    fn uniform_tree_covers_domain() {
        let tree = numeric_uniform_tree("age", 0, 150, 8).unwrap();
        assert_eq!(tree.leaf_count(), 8);
        assert_eq!(tree.node_value(tree.root()).unwrap(), Value::interval(0, 150));
        // Every age in [0,150) has a leaf.
        for age in [0, 1, 37, 74, 149] {
            assert!(tree.leaf_for_value(&Value::int(age)).is_ok(), "age {age}");
        }
        assert!(tree.leaf_for_value(&Value::int(150)).is_err());
    }

    #[test]
    fn uniform_tree_rejects_degenerate_domains() {
        assert!(numeric_uniform_tree("x", 10, 10, 4).is_err());
        assert!(numeric_uniform_tree("x", 0, 10, 0).is_err());
    }

    #[test]
    fn uniform_tree_more_leaves_than_span() {
        // Requesting more leaves than integers in the span degrades gracefully.
        let tree = numeric_uniform_tree("x", 0, 3, 10).unwrap();
        assert!(tree.leaf_count() <= 3);
        for v in 0..3 {
            assert!(tree.leaf_for_value(&Value::int(v)).is_ok());
        }
    }

    #[test]
    fn depths_are_consistent_with_parents() {
        let tree = numeric_uniform_tree("age", 0, 160, 16).unwrap();
        for node in tree.nodes() {
            if let Some(p) = node.parent {
                assert_eq!(node.depth, tree.node(p).unwrap().depth + 1);
            } else {
                assert_eq!(node.depth, 0);
            }
        }
    }
}

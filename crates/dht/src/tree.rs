//! The domain hierarchy tree data structure and the node operations of
//! Table 1 in the paper.

use crate::error::DhtError;
use medshield_relation::Value;
use serde::{Deserialize, Serialize};

/// Index of a node within its tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Whether the tree generalizes a categorical or a numeric attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DhtKind {
    /// Labels at the leaves, generalization to ancestor labels (Fig. 1).
    Categorical,
    /// Disjoint intervals at the leaves, pairwise combined (Fig. 3).
    Numeric,
}

/// One node of a domain hierarchy tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Human-readable label. For numeric nodes this is the interval rendered
    /// as `[lo,hi)`.
    pub label: String,
    /// The half-open interval represented by a numeric node.
    pub interval: Option<(i64, i64)>,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Children, kept sorted by represented value so that the "sorted set S"
    /// of the watermarking algorithm is simply the child list.
    pub children: Vec<NodeId>,
    /// Distance from the root (root has depth 0).
    pub depth: usize,
}

impl Node {
    /// True if the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// The relational [`Value`] this node represents: the interval for
    /// numeric nodes (or the point value for unit intervals), the label for
    /// categorical nodes. This is the paper's `Nd2Val`.
    pub fn value(&self) -> Value {
        match self.interval {
            Some((lo, hi)) if hi == lo + 1 => Value::Int(lo),
            Some((lo, hi)) => Value::Interval { lo, hi },
            None => Value::Text(self.label.clone()),
        }
    }
}

/// A domain hierarchy tree for one quasi-identifying attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainHierarchyTree {
    attribute: String,
    kind: DhtKind,
    nodes: Vec<Node>,
    root: NodeId,
}

impl DomainHierarchyTree {
    /// Construct directly from parts. Intended for the builders in
    /// [`crate::builder`]; invariants (parent/child consistency, sorted
    /// children, correct depths) are the builders' responsibility.
    pub(crate) fn from_parts(
        attribute: String,
        kind: DhtKind,
        nodes: Vec<Node>,
        root: NodeId,
    ) -> Self {
        DomainHierarchyTree { attribute, kind, nodes, root }
    }

    /// Name of the attribute this tree generalizes.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// Whether this is a categorical or numeric tree.
    pub fn kind(&self) -> DhtKind {
        self.kind
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a node by id.
    pub fn node(&self, id: NodeId) -> Result<&Node, DhtError> {
        self.nodes.get(id.0 as usize).ok_or(DhtError::UnknownNode(id))
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// `Parent(nd, tr)` — parent of `id`, `None` for the root.
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>, DhtError> {
        Ok(self.node(id)?.parent)
    }

    /// `Children(nd, tr)` — the (sorted) children of `id`.
    pub fn children(&self, id: NodeId) -> Result<&[NodeId], DhtError> {
        Ok(&self.node(id)?.children)
    }

    /// `Siblings(nd, tr)` — `id` together with its siblings, i.e. the sorted
    /// child list of its parent. For the root this is just `[root]`.
    pub fn siblings(&self, id: NodeId) -> Result<Vec<NodeId>, DhtError> {
        match self.node(id)?.parent {
            Some(p) => Ok(self.node(p)?.children.clone()),
            None => Ok(vec![self.root]),
        }
    }

    /// `Leaves(tr)` — all leaf node ids, in left-to-right order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.leaves_under(self.root).expect("root exists")
    }

    /// The leaf nodes of `SubTree(nd, tr)`, in left-to-right order.
    pub fn leaves_under(&self, id: NodeId) -> Result<Vec<NodeId>, DhtError> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        // Depth-first, pushing children in reverse keeps left-to-right order.
        while let Some(n) = stack.pop() {
            let node = self.node(n)?;
            if node.is_leaf() {
                out.push(n);
            } else {
                for &c in node.children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        Ok(out)
    }

    /// All node ids of the subtree rooted at `id` (preorder).
    pub fn subtree(&self, id: NodeId) -> Result<Vec<NodeId>, DhtError> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            let node = self.node(n)?;
            for &c in node.children.iter().rev() {
                stack.push(c);
            }
        }
        Ok(out)
    }

    /// True if `ancestor` is `descendant` or lies on the path from
    /// `descendant` to the root.
    pub fn is_ancestor_or_self(
        &self,
        ancestor: NodeId,
        descendant: NodeId,
    ) -> Result<bool, DhtError> {
        let mut cur = Some(descendant);
        while let Some(n) = cur {
            if n == ancestor {
                return Ok(true);
            }
            cur = self.node(n)?.parent;
        }
        Ok(false)
    }

    /// The path from `id` up to the root, inclusive on both ends.
    pub fn path_to_root(&self, id: NodeId) -> Result<Vec<NodeId>, DhtError> {
        let mut path = vec![id];
        let mut cur = self.node(id)?.parent;
        while let Some(n) = cur {
            path.push(n);
            cur = self.node(n)?.parent;
        }
        Ok(path)
    }

    /// Depth of `id` (root is 0).
    pub fn depth(&self, id: NodeId) -> Result<usize, DhtError> {
        Ok(self.node(id)?.depth)
    }

    /// Height of the tree: the maximum leaf depth.
    pub fn height(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Number of leaves in the whole tree.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Number of leaves under `id`.
    pub fn leaf_count_under(&self, id: NodeId) -> Result<usize, DhtError> {
        Ok(self.leaves_under(id)?.len())
    }

    /// Find a node by its label.
    pub fn node_by_label(&self, label: &str) -> Result<NodeId, DhtError> {
        self.nodes
            .iter()
            .find(|n| n.label == label)
            .map(|n| n.id)
            .ok_or_else(|| DhtError::UnknownLabel(label.to_string()))
    }

    /// The leaf node that represents a specific (ungeneralized) value:
    /// label match for categorical trees, interval containment for numeric
    /// trees.
    pub fn leaf_for_value(&self, value: &Value) -> Result<NodeId, DhtError> {
        match self.kind {
            DhtKind::Categorical => match value {
                Value::Text(label) => self
                    .leaves()
                    .into_iter()
                    .find(|&l| self.nodes[l.0 as usize].label == *label)
                    .ok_or_else(|| DhtError::ValueOutOfDomain(label.to_string())),
                // Numeric-looking categorical labels (e.g. ICD-9 code "008")
                // may round-trip through text formats as integers; match them
                // by numeric value so `Int(8)` still finds the "008" leaf.
                Value::Int(v) => self
                    .leaves()
                    .into_iter()
                    .find(|&l| label_matches_int(&self.nodes[l.0 as usize].label, *v))
                    .ok_or_else(|| DhtError::ValueOutOfDomain(v.to_string())),
                other => Err(DhtError::ValueOutOfDomain(other.to_string())),
            },
            DhtKind::Numeric => {
                let point = match value {
                    Value::Int(v) => *v,
                    Value::Interval { lo, .. } => *lo,
                    other => return Err(DhtError::ValueOutOfDomain(other.to_string())),
                };
                self.leaves()
                    .into_iter()
                    .find(|&l| {
                        let (lo, hi) = self.nodes[l.0 as usize].interval.expect("numeric leaf");
                        point >= lo && point < hi
                    })
                    .ok_or_else(|| DhtError::ValueOutOfDomain(point.to_string()))
            }
        }
    }

    /// The *most specific* node (deepest) that represents `value`, whether
    /// generalized or not: exact label / interval match if one exists,
    /// otherwise the leaf containing the value. This is how a binned cell is
    /// mapped back onto the tree during watermark embedding and detection.
    pub fn node_for_value(&self, value: &Value) -> Result<NodeId, DhtError> {
        // Exact match against any node first (generalized values).
        match value {
            Value::Text(s) => {
                if let Ok(id) = self.node_by_label(s) {
                    return Ok(id);
                }
            }
            Value::Interval { lo, hi } => {
                if let Some(n) = self.nodes.iter().find(|n| n.interval == Some((*lo, *hi))) {
                    return Ok(n.id);
                }
            }
            Value::Int(v) => {
                if let Some(n) = self.nodes.iter().find(|n| n.interval == Some((*v, *v + 1))) {
                    return Ok(n.id);
                }
                if self.kind == DhtKind::Categorical {
                    if let Some(n) = self.nodes.iter().find(|n| label_matches_int(&n.label, *v)) {
                        return Ok(n.id);
                    }
                }
            }
            Value::Null => {}
        }
        self.leaf_for_value(value)
    }

    /// `Nd2Val(nd)` — the value represented by a node.
    pub fn node_value(&self, id: NodeId) -> Result<Value, DhtError> {
        Ok(self.node(id)?.value())
    }

    /// `Index(nd, S)` — index of `id` within a slice of node ids.
    /// Returns `None` if the node is not in the slice.
    pub fn index_in(id: NodeId, set: &[NodeId]) -> Option<usize> {
        set.iter().position(|&n| n == id)
    }
}

/// True if a categorical label denotes the integer `v` (exact text match or
/// numeric equality for labels like `008`).
fn label_matches_int(label: &str, v: i64) -> bool {
    label == v.to_string() || label.parse::<i64>() == Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{numeric_uniform_tree, CategoricalNodeSpec};

    /// The Fig. 1 person-role tree.
    pub(crate) fn role_tree() -> DomainHierarchyTree {
        CategoricalNodeSpec::internal(
            "Person",
            vec![
                CategoricalNodeSpec::internal(
                    "Medical Staff",
                    vec![
                        CategoricalNodeSpec::internal(
                            "Doctor",
                            vec![
                                CategoricalNodeSpec::leaf("Surgeon"),
                                CategoricalNodeSpec::leaf("Physician"),
                            ],
                        ),
                        CategoricalNodeSpec::internal(
                            "Paramedic",
                            vec![
                                CategoricalNodeSpec::leaf("Pharmacist"),
                                CategoricalNodeSpec::leaf("Nurse"),
                                CategoricalNodeSpec::leaf("Consultant"),
                            ],
                        ),
                    ],
                ),
                CategoricalNodeSpec::internal(
                    "Non-medical Staff",
                    vec![
                        CategoricalNodeSpec::leaf("Technician"),
                        CategoricalNodeSpec::leaf("Administrator"),
                    ],
                ),
            ],
        )
        .build("role")
        .unwrap()
    }

    #[test]
    fn role_tree_shape() {
        let t = role_tree();
        assert_eq!(t.kind(), DhtKind::Categorical);
        assert_eq!(t.leaf_count(), 7);
        assert_eq!(t.height(), 3);
        assert_eq!(t.node(t.root()).unwrap().label, "Person");
        assert_eq!(t.leaf_count_under(t.root()).unwrap(), 7);
    }

    #[test]
    fn parent_children_siblings() {
        let t = role_tree();
        let pharmacist = t.node_by_label("Pharmacist").unwrap();
        let paramedic = t.node_by_label("Paramedic").unwrap();
        assert_eq!(t.parent(pharmacist).unwrap(), Some(paramedic));
        assert!(t.children(paramedic).unwrap().contains(&pharmacist));
        let sibs = t.siblings(pharmacist).unwrap();
        assert_eq!(sibs.len(), 3);
        assert!(sibs.contains(&t.node_by_label("Nurse").unwrap()));
        // Root's sibling set is itself.
        assert_eq!(t.siblings(t.root()).unwrap(), vec![t.root()]);
        // Children are sorted by label.
        let labels: Vec<&str> = t
            .children(paramedic)
            .unwrap()
            .iter()
            .map(|&c| t.node(c).unwrap().label.as_str())
            .collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted);
    }

    #[test]
    fn leaves_and_subtree() {
        let t = role_tree();
        let doctor = t.node_by_label("Doctor").unwrap();
        let leaves: Vec<String> = t
            .leaves_under(doctor)
            .unwrap()
            .iter()
            .map(|&l| t.node(l).unwrap().label.clone())
            .collect();
        assert_eq!(leaves, vec!["Physician", "Surgeon"]);
        let sub = t.subtree(doctor).unwrap();
        assert_eq!(sub.len(), 3);
        assert_eq!(sub[0], doctor);
    }

    #[test]
    fn ancestor_and_path() {
        let t = role_tree();
        let nurse = t.node_by_label("Nurse").unwrap();
        let staff = t.node_by_label("Medical Staff").unwrap();
        let nonmed = t.node_by_label("Non-medical Staff").unwrap();
        assert!(t.is_ancestor_or_self(staff, nurse).unwrap());
        assert!(t.is_ancestor_or_self(nurse, nurse).unwrap());
        assert!(!t.is_ancestor_or_self(nonmed, nurse).unwrap());
        let path = t.path_to_root(nurse).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], nurse);
        assert_eq!(*path.last().unwrap(), t.root());
        assert_eq!(t.depth(nurse).unwrap(), 3);
        assert_eq!(t.depth(t.root()).unwrap(), 0);
    }

    #[test]
    fn value_mapping_categorical() {
        let t = role_tree();
        let v = Value::text("Consultant");
        let leaf = t.leaf_for_value(&v).unwrap();
        assert_eq!(t.node_value(leaf).unwrap(), v);
        // Generalized label maps to the internal node.
        let para = t.node_for_value(&Value::text("Paramedic")).unwrap();
        assert_eq!(t.node(para).unwrap().label, "Paramedic");
        assert!(t.leaf_for_value(&Value::text("Astronaut")).is_err());
        assert!(t.leaf_for_value(&Value::int(5)).is_err());
    }

    #[test]
    fn numeric_looking_categorical_labels_match_ints() {
        // ICD-9-style code labels round-trip through CSV as integers.
        let t = CategoricalNodeSpec::internal(
            "codes",
            vec![
                CategoricalNodeSpec::leaf("001"),
                CategoricalNodeSpec::leaf("008"),
                CategoricalNodeSpec::leaf("527"),
            ],
        )
        .build("symptom")
        .unwrap();
        assert_eq!(t.leaf_for_value(&Value::int(527)).unwrap(), t.node_by_label("527").unwrap());
        assert_eq!(t.leaf_for_value(&Value::int(8)).unwrap(), t.node_by_label("008").unwrap());
        assert_eq!(t.node_for_value(&Value::int(1)).unwrap(), t.node_by_label("001").unwrap());
        assert!(t.leaf_for_value(&Value::int(999)).is_err());
    }

    #[test]
    fn value_mapping_numeric() {
        let t = numeric_uniform_tree("age", 0, 160, 16).unwrap();
        assert_eq!(t.kind(), DhtKind::Numeric);
        assert_eq!(t.leaf_count(), 16);
        let leaf = t.leaf_for_value(&Value::int(37)).unwrap();
        assert_eq!(t.node_value(leaf).unwrap(), Value::interval(30, 40));
        // A generalized interval maps to the exact internal node.
        let n = t.node_for_value(&Value::interval(0, 20)).unwrap();
        assert_eq!(t.node_value(n).unwrap(), Value::interval(0, 20));
        assert!(t.leaf_for_value(&Value::int(200)).is_err());
        assert!(t.leaf_for_value(&Value::text("x")).is_err());
    }

    #[test]
    fn index_in_helper() {
        let t = role_tree();
        let para = t.node_by_label("Paramedic").unwrap();
        let kids = t.children(para).unwrap();
        for (i, &k) in kids.iter().enumerate() {
            assert_eq!(DomainHierarchyTree::index_in(k, kids), Some(i));
        }
        assert_eq!(DomainHierarchyTree::index_in(t.root(), kids), None);
    }

    #[test]
    fn unknown_node_errors() {
        let t = role_tree();
        let bogus = NodeId(9999);
        assert!(t.node(bogus).is_err());
        assert!(t.parent(bogus).is_err());
        assert!(t.children(bogus).is_err());
    }
}

//! # medshield-dht
//!
//! Domain hierarchy trees (DHTs) and generalization machinery for the
//! MedShield framework (Bertino et al., ICDE 2005).
//!
//! A DHT organizes the domain of a quasi-identifying attribute: leaves are the
//! most specific values, the root is the most general description, and
//! generalization replaces a leaf value by the value represented by one of its
//! ancestors (Fig. 1 of the paper). Numeric attributes get a binary DHT built
//! by dividing the domain into disjoint intervals and pairwise combining them
//! (Fig. 3).
//!
//! The paper's broader notion of generalization (following Iyengar) is a set
//! of *generalization nodes* such that the path from every leaf to the root
//! meets **exactly one** node of the set (§4). All of the binning and
//! watermarking algorithms are phrased in terms of such sets:
//!
//! * the **maximal generalization nodes** come from the off-line enforcement
//!   of usage metrics,
//! * the **minimal generalization nodes** come from mono-attribute binning,
//! * the **ultimate generalization nodes** come from multi-attribute binning,
//! * the hierarchical watermark embeds bits by permutations that walk from a
//!   maximal generalization node down to an ultimate generalization node.
//!
//! This crate provides:
//!
//! * [`DomainHierarchyTree`] with the node operations of Table 1
//!   (`Parent`, `Children`, `Siblings`, `Leaves`, `SubTree`, …),
//! * builders for categorical trees ([`builder::CategoricalNodeSpec`]) and
//!   numeric binary trees ([`builder::numeric_binary_tree`] /
//!   [`builder::numeric_uniform_tree`]),
//! * [`GeneralizationSet`] with validity checking, leaf covering,
//!   value↔node mapping (`Val2Nd` / `Nd2Val`), and enumeration of the
//!   allowable generalizations between two node sets (used by multi-attribute
//!   binning).
//!
//! ```
//! use medshield_dht::{CategoricalNodeSpec, GeneralizationSet};
//!
//! let tree = CategoricalNodeSpec::internal(
//!     "any symptom",
//!     vec![
//!         CategoricalNodeSpec::internal(
//!             "respiratory",
//!             vec![CategoricalNodeSpec::leaf("asthma"), CategoricalNodeSpec::leaf("bronchitis")],
//!         ),
//!         CategoricalNodeSpec::internal(
//!             "cardiac",
//!             vec![CategoricalNodeSpec::leaf("angina"), CategoricalNodeSpec::leaf("arrhythmia")],
//!         ),
//!     ],
//! )
//! .build("symptom")
//! .unwrap();
//! assert_eq!(tree.leaf_count(), 4);
//! // Generalizing to depth 1 describes every value as respiratory/cardiac.
//! assert_eq!(GeneralizationSet::at_depth(&tree, 1).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod builder;
pub mod error;
pub mod generalization;
pub mod tree;

pub use builder::CategoricalNodeSpec;
pub use error::DhtError;
pub use generalization::GeneralizationSet;
pub use tree::{DhtKind, DomainHierarchyTree, Node, NodeId};

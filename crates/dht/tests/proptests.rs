//! Property-based tests of the domain-hierarchy-tree invariants that the
//! binning and watermarking algorithms rely on.

use medshield_dht::builder::{numeric_binary_tree, CategoricalNodeSpec};
use medshield_dht::{DomainHierarchyTree, GeneralizationSet};
use medshield_relation::Value;
use proptest::prelude::*;

/// Random contiguous interval lists (width 1..20, 1..40 leaves).
fn arb_intervals() -> impl Strategy<Value = Vec<(i64, i64)>> {
    (prop::collection::vec(1i64..20, 1..40), -100i64..100).prop_map(|(widths, start)| {
        let mut lo = start;
        widths
            .into_iter()
            .map(|w| {
                let iv = (lo, lo + w);
                lo += w;
                iv
            })
            .collect()
    })
}

/// Random small categorical trees described by per-group leaf counts.
fn arb_categorical() -> impl Strategy<Value = DomainHierarchyTree> {
    prop::collection::vec(1usize..6, 1..6).prop_map(|groups| {
        let children: Vec<CategoricalNodeSpec> = groups
            .iter()
            .enumerate()
            .map(|(g, &leaves)| {
                CategoricalNodeSpec::internal(
                    format!("g{g}"),
                    (0..leaves).map(|l| CategoricalNodeSpec::leaf(format!("g{g}-l{l}"))).collect(),
                )
            })
            .collect();
        CategoricalNodeSpec::internal("root", children).build("col").unwrap()
    })
}

proptest! {
    /// Numeric trees built from arbitrary contiguous intervals keep every
    /// structural invariant: one leaf per interval, every in-domain point maps
    /// to exactly the leaf containing it, the root spans the domain, and
    /// every parent's interval is the union of its children's.
    #[test]
    fn numeric_tree_invariants(intervals in arb_intervals()) {
        let tree = numeric_binary_tree("x", &intervals).unwrap();
        prop_assert_eq!(tree.leaf_count(), intervals.len());
        let (dom_lo, dom_hi) = (intervals[0].0, intervals.last().unwrap().1);
        prop_assert_eq!(tree.node_value(tree.root()).unwrap(), if dom_hi == dom_lo + 1 {
            Value::Int(dom_lo)
        } else {
            Value::interval(dom_lo, dom_hi)
        });
        // Spot-check containment at every interval boundary.
        for &(lo, hi) in &intervals {
            for point in [lo, hi - 1] {
                let leaf = tree.leaf_for_value(&Value::int(point)).unwrap();
                let (llo, lhi) = tree.node(leaf).unwrap().interval.unwrap();
                prop_assert!(point >= llo && point < lhi);
            }
        }
        // Out-of-domain points are rejected.
        prop_assert!(tree.leaf_for_value(&Value::int(dom_hi)).is_err());
        prop_assert!(tree.leaf_for_value(&Value::int(dom_lo - 1)).is_err());
        // Parent intervals union their children.
        for node in tree.nodes() {
            if !node.children.is_empty() {
                let (plo, phi) = node.interval.unwrap();
                let first = tree.node(node.children[0]).unwrap().interval.unwrap();
                let last = tree.node(*node.children.last().unwrap()).unwrap().interval.unwrap();
                prop_assert_eq!((plo, phi), (first.0, last.1));
            }
        }
    }

    /// For every node of a random categorical tree, `{node} ∪ {leaves outside
    /// its subtree}` is a valid generalization — the probe construction used
    /// by the off-line usage-metric enforcement.
    #[test]
    fn subtree_probe_generalizations_are_valid(tree in arb_categorical()) {
        for node in tree.nodes() {
            let inside: std::collections::HashSet<_> =
                tree.leaves_under(node.id).unwrap().into_iter().collect();
            let mut nodes: Vec<_> = tree
                .leaves()
                .into_iter()
                .filter(|l| !inside.contains(l))
                .collect();
            nodes.push(node.id);
            prop_assert!(GeneralizationSet::new(&tree, nodes).is_ok());
        }
    }

    /// Covering nodes are consistent: for any depth-based generalization and
    /// any leaf, the covering node is an ancestor-or-self of the leaf and
    /// generalizing the leaf's value yields exactly that node's value.
    #[test]
    fn covering_is_ancestor_and_idempotent(tree in arb_categorical(), depth in 0usize..4) {
        let g = GeneralizationSet::at_depth(&tree, depth);
        for leaf in tree.leaves() {
            let cover = g.covering_node(&tree, leaf).unwrap();
            prop_assert!(tree.is_ancestor_or_self(cover, leaf).unwrap());
            let value = tree.node_value(leaf).unwrap();
            let generalized = g.generalize_value(&tree, &value).unwrap();
            prop_assert_eq!(&generalized, &tree.node_value(cover).unwrap());
            // Generalizing an already generalized value is a fixed point.
            prop_assert_eq!(g.generalize_value(&tree, &generalized).unwrap(), generalized);
        }
    }

    /// `count_between` agrees with the length of the materialized enumeration
    /// whenever the space is small enough to enumerate fully.
    #[test]
    fn enumeration_count_matches(tree in arb_categorical()) {
        let lower = GeneralizationSet::all_leaves(&tree);
        let upper = GeneralizationSet::root_only(&tree);
        let count = GeneralizationSet::count_between(&tree, &lower, &upper).unwrap();
        prop_assume!(count <= 512);
        let all = GeneralizationSet::enumerate_between(&tree, &lower, &upper, 100_000).unwrap();
        prop_assert_eq!(all.len(), count);
    }
}

//! The binning agent: `Binning(tbl, ultigen)` of Fig. 8, orchestrating the
//! whole §4 pipeline and producing the state the watermarking agent consumes.

use crate::config::BinningConfig;
use crate::error::BinningError;
use crate::maximal;
use crate::mono;
use crate::multi::{self, ColumnContext, SearchMode};
use medshield_crypto::Aes128;
use medshield_dht::{DomainHierarchyTree, GeneralizationSet};
use medshield_metrics::usage::UsageBounds;
use medshield_relation::{Table, Value};
use std::collections::BTreeMap;

/// Binning state of one quasi-identifying column: the three node sets of the
/// paper (maximal from the usage metrics, minimal from mono-attribute
/// binning, ultimate from multi-attribute binning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnBinning {
    /// Column name.
    pub column: String,
    /// Maximal generalization nodes (usage metrics).
    pub maximal: GeneralizationSet,
    /// Minimal generalization nodes (mono-attribute binning).
    pub minimal: GeneralizationSet,
    /// Ultimate generalization nodes (multi-attribute binning) — the
    /// generalization actually applied to the data.
    pub ultimate: GeneralizationSet,
}

/// The result of binning a table.
#[derive(Debug, Clone)]
pub struct BinningOutcome {
    /// The binned table: identifying columns encrypted, quasi-identifying
    /// values replaced by their ultimate generalization node's value.
    pub table: Table,
    /// Per-column binning state, in schema order of the quasi columns.
    pub columns: Vec<ColumnBinning>,
    /// The k that binning enforced (k + ε).
    pub effective_k: usize,
    /// Whether the result satisfies k-anonymity over the quasi-identifier
    /// combination at the effective k.
    pub satisfied: bool,
    /// Which multi-attribute search mode ran.
    pub mode: SearchMode,
    /// Warnings gathered along the pipeline (unbinnable subtrees, fallbacks).
    pub warnings: Vec<String>,
}

impl BinningOutcome {
    /// The binning state of a specific column, if it was binned.
    pub fn column(&self, name: &str) -> Option<&ColumnBinning> {
        self.columns.iter().find(|c| c.column == name)
    }
}

/// The binning agent of the framework (Fig. 2, left box).
#[derive(Debug, Clone)]
pub struct BinningAgent {
    config: BinningConfig,
    cipher: Aes128,
}

impl BinningAgent {
    /// Create an agent from a configuration. The identifier-encryption key is
    /// derived from `config.encryption_secret`.
    pub fn new(config: BinningConfig) -> Self {
        let cipher = Aes128::from_secret(&config.encryption_secret);
        BinningAgent { config, cipher }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &BinningConfig {
        &self.config
    }

    /// The cipher used for the identifying columns (`E()` of Fig. 8). The
    /// rightful-ownership protocol needs it to decrypt the identifiers in
    /// court (§5.4).
    pub fn cipher(&self) -> &Aes128 {
        &self.cipher
    }

    /// Bin `table` using maximal generalization nodes stated directly per
    /// column (the paper's experimental setup).
    pub fn bin(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        maximal: &BTreeMap<String, GeneralizationSet>,
    ) -> Result<BinningOutcome, BinningError> {
        if self.config.threads == 0 {
            return Err(BinningError::InvalidThreads);
        }
        let quasi: Vec<String> = table
            .schema()
            .quasi_names()
            .into_iter()
            .map(std::string::ToString::to_string)
            .collect();
        let mut warnings = Vec::new();
        let effective_k = self.config.spec.effective_k();

        // 1. Mono-attribute binning per column.
        let mut per_column: Vec<(String, GeneralizationSet, GeneralizationSet)> = Vec::new();
        for column in &quasi {
            let tree =
                trees.get(column).ok_or_else(|| BinningError::MissingTree(column.clone()))?;
            let max_nodes =
                maximal.get(column).cloned().unwrap_or_else(|| GeneralizationSet::root_only(tree));
            let mono = mono::generate_minimal_nodes(
                table,
                column,
                tree,
                &max_nodes,
                effective_k,
                self.config.minimal_strategy,
            )?;
            warnings.extend(mono.warnings);
            per_column.push((column.clone(), max_nodes, mono.minimal));
        }

        // 2. Multi-attribute binning across all columns.
        let contexts: Vec<ColumnContext<'_>> = per_column
            .iter()
            .map(|(column, max_nodes, min_nodes)| ColumnContext {
                column,
                tree: &trees[column],
                minimal: min_nodes,
                maximal: max_nodes,
            })
            .collect();
        let multi = multi::generate_ultimate_nodes(
            table,
            &contexts,
            effective_k,
            self.config.selection_strategy,
            self.config.exhaustive_limit,
            self.config.threads,
        )?;
        warnings.extend(multi.warnings);

        // 3. Binning(tbl, ultigen): encrypt identifiers, generalize quasi values.
        let mut binned = table.snapshot();
        let ident_columns: Vec<String> = table
            .schema()
            .identifying_indices()
            .into_iter()
            .map(|i| table.schema().column(i).expect("index from schema").name.clone())
            .collect();
        let ids = binned.ids();
        for id in &ids {
            for column in &ident_columns {
                let v = binned.value(*id, column)?.clone();
                let encrypted = self.cipher.encrypt_value(&v.canonical_bytes());
                binned.set_value(*id, column, Value::Text(encrypted))?;
            }
            for (i, (column, _, _)) in per_column.iter().enumerate() {
                let tree = &trees[column];
                let v = binned.value(*id, column)?.clone();
                let generalized =
                    multi.ultimate[i].generalize_value(tree, &v).map_err(BinningError::Dht)?;
                binned.set_value(*id, column, generalized)?;
            }
        }

        let columns = per_column
            .into_iter()
            .zip(multi.ultimate)
            .map(|((column, maximal, minimal), ultimate)| ColumnBinning {
                column,
                maximal,
                minimal,
                ultimate,
            })
            .collect();

        Ok(BinningOutcome {
            table: binned,
            columns,
            effective_k,
            satisfied: multi.satisfied,
            mode: multi.mode,
            warnings,
        })
    }

    /// Bin `table` enforcing k-anonymity **per attribute only** (the
    /// mono-attribute stage of Fig. 5, skipping multi-attribute binning).
    ///
    /// This is the granularity at which the paper's §6 interference analysis
    /// and its Fig. 14 experiment operate: each attribute's bins hold at
    /// least k records, which leaves far more per-attribute granularity (and
    /// therefore watermark bandwidth) than the full combination requirement.
    /// The returned outcome uses the minimal generalization nodes as the
    /// ultimate generalization.
    pub fn bin_per_attribute(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        maximal: &BTreeMap<String, GeneralizationSet>,
    ) -> Result<BinningOutcome, BinningError> {
        if self.config.threads == 0 {
            return Err(BinningError::InvalidThreads);
        }
        let quasi: Vec<String> = table
            .schema()
            .quasi_names()
            .into_iter()
            .map(std::string::ToString::to_string)
            .collect();
        let mut warnings = Vec::new();
        let effective_k = self.config.spec.effective_k();

        let mut columns: Vec<ColumnBinning> = Vec::new();
        for column in &quasi {
            let tree =
                trees.get(column).ok_or_else(|| BinningError::MissingTree(column.clone()))?;
            let max_nodes =
                maximal.get(column).cloned().unwrap_or_else(|| GeneralizationSet::root_only(tree));
            let mono = mono::generate_minimal_nodes(
                table,
                column,
                tree,
                &max_nodes,
                effective_k,
                self.config.minimal_strategy,
            )?;
            warnings.extend(mono.warnings);
            columns.push(ColumnBinning {
                column: column.clone(),
                maximal: max_nodes,
                minimal: mono.minimal.clone(),
                ultimate: mono.minimal,
            });
        }

        // Apply the per-attribute generalization and encrypt identifiers.
        let mut binned = table.snapshot();
        let ident_columns: Vec<String> = table
            .schema()
            .identifying_indices()
            .into_iter()
            .map(|i| table.schema().column(i).expect("index from schema").name.clone())
            .collect();
        for id in binned.ids() {
            for column in &ident_columns {
                let v = binned.value(id, column)?.clone();
                let encrypted = self.cipher.encrypt_value(&v.canonical_bytes());
                binned.set_value(id, column, Value::Text(encrypted))?;
            }
            for cb in &columns {
                let tree = &trees[&cb.column];
                let v = binned.value(id, &cb.column)?.clone();
                let generalized =
                    cb.ultimate.generalize_value(tree, &v).map_err(BinningError::Dht)?;
                binned.set_value(id, &cb.column, generalized)?;
            }
        }

        let satisfied = warnings.is_empty();
        Ok(BinningOutcome {
            table: binned,
            columns,
            effective_k,
            satisfied,
            mode: SearchMode::PerAttribute,
            warnings,
        })
    }

    /// Bin `table` under information-loss bounds (Eq. 4): first translate the
    /// bounds off-line into maximal generalization nodes, then bin.
    pub fn bin_with_bounds(
        &self,
        table: &Table,
        trees: &BTreeMap<String, DomainHierarchyTree>,
        bounds: &UsageBounds,
    ) -> Result<BinningOutcome, BinningError> {
        let mut maximal = BTreeMap::new();
        for column in table.schema().quasi_names() {
            let tree =
                trees.get(column).ok_or_else(|| BinningError::MissingTree(column.to_string()))?;
            let nodes =
                maximal::maximal_nodes_for_bound(table, column, tree, bounds.bound_for(column))?;
            maximal.insert(column.to_string(), nodes);
        }
        self.bin(table, trees, &maximal)
    }

    /// Decrypt an encrypted identifier produced by [`BinningAgent::bin`],
    /// returning the canonical bytes of the original value. Needed by the
    /// rightful-ownership protocol.
    pub fn decrypt_identifier(&self, encrypted: &str) -> Result<Vec<u8>, BinningError> {
        self.cipher
            .decrypt_value(encrypted)
            .map_err(|e| BinningError::NotBinnable { k: 0, reason: format!("decrypt failed: {e}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BinningConfig, KAnonymitySpec};
    use medshield_datagen::{ontology, DatasetConfig, MedicalDataset};
    use medshield_metrics::{anonymity, satisfies_k_anonymity};

    fn maximal_at_depth(
        trees: &BTreeMap<String, DomainHierarchyTree>,
        depth: usize,
    ) -> BTreeMap<String, GeneralizationSet> {
        trees
            .iter()
            .map(|(name, tree)| (name.clone(), GeneralizationSet::at_depth(tree, depth)))
            .collect()
    }

    fn small_dataset(n: usize) -> MedicalDataset {
        MedicalDataset::generate(&DatasetConfig::small(n))
    }

    #[test]
    fn binned_table_satisfies_k_anonymity() {
        let ds = small_dataset(400);
        let agent = BinningAgent::new(BinningConfig::with_k(5));
        // Allow generalization all the way to the root.
        let maximal = maximal_at_depth(&ds.trees, 0);
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        assert!(outcome.satisfied, "warnings: {:?}", outcome.warnings);
        let quasi = ds.table.schema().quasi_names();
        assert!(satisfies_k_anonymity(&outcome.table, &quasi, 5).unwrap());
        assert_eq!(outcome.effective_k, 5);
    }

    #[test]
    fn identifying_column_is_encrypted_and_recoverable() {
        let ds = small_dataset(50);
        let agent = BinningAgent::new(BinningConfig::with_k(2));
        let maximal = maximal_at_depth(&ds.trees, 0);
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        for (original, binned) in ds.table.iter().zip(outcome.table.iter()) {
            let enc = binned.values[0].as_text().unwrap();
            assert_ne!(Some(enc), original.values[0].as_text(), "ssn must change");
            let decrypted = agent.decrypt_identifier(enc).unwrap();
            assert_eq!(decrypted, original.values[0].canonical_bytes());
        }
    }

    #[test]
    fn encryption_is_one_to_one() {
        let ds = small_dataset(100);
        let agent = BinningAgent::new(BinningConfig::with_k(2));
        let maximal = maximal_at_depth(&ds.trees, 0);
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        let mut seen = std::collections::HashSet::new();
        for t in outcome.table.iter() {
            assert!(seen.insert(t.values[0].clone()), "duplicate encrypted identifier");
        }
    }

    #[test]
    fn quasi_values_are_generalized_within_the_ultimate_sets() {
        let ds = small_dataset(300);
        let agent = BinningAgent::new(BinningConfig::with_k(8));
        let maximal = maximal_at_depth(&ds.trees, 0);
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        for cb in &outcome.columns {
            let tree = &ds.trees[&cb.column];
            // Ultimate nodes respect the usage metrics.
            assert!(cb.ultimate.is_at_or_below(tree, &cb.maximal).unwrap());
            // Minimal nodes are at or below the ultimate ones (ultimate is a
            // coarsening of minimal).
            assert!(cb.minimal.is_at_or_below(tree, &cb.ultimate).unwrap());
            // Every value in the binned column is exactly an ultimate node's value.
            for v in outcome.table.column_values(&cb.column).unwrap() {
                let node = tree.node_for_value(&v).unwrap();
                assert!(
                    cb.ultimate.contains(node),
                    "column {} value {v} is not an ultimate generalization node",
                    cb.column
                );
            }
        }
    }

    #[test]
    fn mono_binning_alone_satisfies_per_column_k() {
        let ds = small_dataset(500);
        let agent = BinningAgent::new(BinningConfig::with_k(10));
        let maximal = maximal_at_depth(&ds.trees, 0);
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        for cb in &outcome.columns {
            assert!(
                anonymity::column_satisfies_k(&outcome.table, &cb.column, 10).unwrap(),
                "column {} violates per-column k",
                cb.column
            );
        }
    }

    #[test]
    fn epsilon_margin_raises_effective_k() {
        let ds = small_dataset(300);
        let mut config = BinningConfig::with_k(4);
        config.spec = KAnonymitySpec::with_epsilon(4, 2);
        let agent = BinningAgent::new(config);
        let maximal = maximal_at_depth(&ds.trees, 0);
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        assert_eq!(outcome.effective_k, 6);
        let quasi = ds.table.schema().quasi_names();
        assert!(satisfies_k_anonymity(&outcome.table, &quasi, 6).unwrap());
    }

    #[test]
    fn missing_tree_is_reported() {
        let ds = small_dataset(20);
        let agent = BinningAgent::new(BinningConfig::with_k(2));
        let mut trees = ds.trees.clone();
        trees.remove("age");
        let maximal = maximal_at_depth(&trees, 0);
        assert!(matches!(
            agent.bin(&ds.table, &trees, &maximal),
            Err(BinningError::MissingTree(c)) if c == "age"
        ));
    }

    #[test]
    fn restrictive_usage_metrics_can_make_data_unbinnable() {
        let ds = small_dataset(200);
        let agent = BinningAgent::new(BinningConfig::with_k(50));
        // Usage metrics forbid any generalization at all.
        let maximal: BTreeMap<String, GeneralizationSet> = ds
            .trees
            .iter()
            .map(|(name, tree)| (name.clone(), GeneralizationSet::all_leaves(tree)))
            .collect();
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        assert!(!outcome.satisfied);
        assert!(!outcome.warnings.is_empty());
    }

    #[test]
    fn bin_with_bounds_enforces_loss_limits() {
        let ds = small_dataset(300);
        let agent = BinningAgent::new(BinningConfig::with_k(3));
        let quasi = ds.table.schema().quasi_names();
        let bounds = UsageBounds::uniform(&quasi, 0.6);
        let outcome = agent.bin_with_bounds(&ds.table, &ds.trees, &bounds).unwrap();
        // Measure the loss of the applied generalization against the bounds.
        let cgs: Vec<medshield_metrics::ColumnGeneralization<'_>> = outcome
            .columns
            .iter()
            .map(|cb| medshield_metrics::ColumnGeneralization {
                column: &cb.column,
                tree: &ds.trees[&cb.column],
                generalization: &cb.ultimate,
            })
            .collect();
        let check = bounds.check(&ds.table, &cgs).unwrap();
        assert!(check.all_ok(), "{check:?}");
    }

    #[test]
    fn default_maximal_is_root_when_not_specified() {
        let ds = small_dataset(100);
        let agent = BinningAgent::new(BinningConfig::with_k(5));
        // Empty maximal map → every column defaults to root-only (no usage
        // restriction).
        let outcome = agent.bin(&ds.table, &ds.trees, &BTreeMap::new()).unwrap();
        assert!(outcome.satisfied);
    }

    #[test]
    fn higher_k_loses_at_least_as_much_information() {
        let ds = small_dataset(600);
        let maximal = maximal_at_depth(&ds.trees, 0);
        let mut last_loss = -1.0f64;
        for k in [2usize, 10, 40] {
            let agent = BinningAgent::new(BinningConfig::with_k(k));
            let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
            let cgs: Vec<medshield_metrics::ColumnGeneralization<'_>> = outcome
                .columns
                .iter()
                .map(|cb| medshield_metrics::ColumnGeneralization {
                    column: &cb.column,
                    tree: &ds.trees[&cb.column],
                    generalization: &cb.ultimate,
                })
                .collect();
            let loss = medshield_metrics::table_info_loss(&ds.table, &cgs).unwrap();
            // The greedy multi-attribute search is a heuristic, so the loss is
            // only approximately monotone in k; allow a small slack.
            assert!(
                loss >= last_loss - 0.05,
                "k={k}: loss {loss} decreased sharply from {last_loss}"
            );
            last_loss = loss.max(last_loss);
        }
    }

    #[test]
    fn per_attribute_binning_keeps_more_granularity() {
        let ds = small_dataset(800);
        let agent = BinningAgent::new(BinningConfig::with_k(8));
        let maximal = maximal_at_depth(&ds.trees, 0);
        let per_attr = agent.bin_per_attribute(&ds.table, &ds.trees, &maximal).unwrap();
        let full = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        assert_eq!(per_attr.mode, crate::multi::SearchMode::PerAttribute);
        // Every attribute satisfies k on its own...
        for cb in &per_attr.columns {
            assert!(
                anonymity::column_satisfies_k(&per_attr.table, &cb.column, 8).unwrap(),
                "column {}",
                cb.column
            );
            // ...and the per-attribute ultimate equals the minimal nodes.
            assert_eq!(cb.ultimate, cb.minimal);
        }
        // Per-attribute binning never generalizes more than the full pipeline.
        let per_attr_nodes: usize = per_attr.columns.iter().map(|c| c.ultimate.len()).sum();
        let full_nodes: usize = full.columns.iter().map(|c| c.ultimate.len()).sum();
        assert!(per_attr_nodes >= full_nodes);
    }

    #[test]
    fn role_tree_is_exercised_by_column_lookup() {
        // `ontology::role_tree` is the paper's Fig. 1; keep it wired into at
        // least one binning-level test for coverage of the example tree.
        let tree = ontology::role_tree();
        assert!(tree.node_by_label("Paramedic").is_ok());
    }
}

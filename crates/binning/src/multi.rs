//! Multi-attribute binning: `GenUltiNd` (Fig. 7 of the paper).
//!
//! After mono-attribute binning each attribute satisfies k-anonymity on its
//! own, but combinations of attributes may not (§4.2). Multi-attribute
//! binning therefore searches, per column, the allowable generalizations
//! lying between the minimal and the maximal generalization nodes, and picks
//! the combination — the **ultimate generalization** — that satisfies
//! k-anonymity over the full quasi-identifier set with the least loss.
//!
//! Two search modes are provided:
//!
//! * **Exhaustive** (the paper's `EnumGen` + `Selection`): enumerate every
//!   combination of allowable generalizations, keep the valid ones, choose
//!   the one minimizing the selection score. Used whenever the number of
//!   combinations is at most [`crate::BinningConfig::exhaustive_limit`].
//! * **Greedy coarsening** (scalability fallback, documented in DESIGN.md):
//!   start from the minimal generalization of every column and repeatedly
//!   apply the cheapest single merge (collapsing a sibling group into its
//!   parent, never above the maximal nodes), preferring merges that touch a
//!   violating bin, until k-anonymity holds or no merge is left.
//!
//! Both searches run on `threads` scoped worker threads ([`std::thread::scope`],
//! mirroring the chunk-parallel protection engine): candidates are scored
//! against the same immutable `SearchPlan`/`TableLeaves` state, the
//! exhaustive candidate space is sharded into contiguous linear-index ranges,
//! the greedy frontier is sharded into candidate-merge chunks, and per-shard
//! bests merge under a total order — lowest loss first, ties broken by the
//! lowest candidate index in the deterministic enumeration order (a fixed
//! lexicographic order on the per-column node vectors). The outcome is
//! therefore byte-identical for every thread count, a property pinned by the
//! repository-level `binning_equivalence` suite.
//!
//! The selection score is either specificity loss (the paper's preferred
//! estimate) or the full information loss of Eq. (1)–(3), per
//! [`SelectionStrategy`].

use crate::config::SelectionStrategy;
use crate::error::BinningError;
use crate::plan::{SearchPlan, TableLeaves};
use medshield_dht::{DhtKind, DomainHierarchyTree, GeneralizationSet, NodeId};
use medshield_relation::Table;
use std::collections::{BTreeMap, HashMap};
use std::thread;

/// Per-column input to multi-attribute binning.
#[derive(Debug, Clone)]
pub struct ColumnContext<'a> {
    /// Column name.
    pub column: &'a str,
    /// The column's domain hierarchy tree.
    pub tree: &'a DomainHierarchyTree,
    /// Minimal generalization nodes from mono-attribute binning.
    pub minimal: &'a GeneralizationSet,
    /// Maximal generalization nodes from the usage metrics.
    pub maximal: &'a GeneralizationSet,
}

/// Which search mode produced the ultimate generalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Exhaustive enumeration of all allowable combinations.
    Exhaustive,
    /// Greedy coarsening fallback.
    Greedy,
    /// Multi-attribute binning was skipped: the minimal generalization nodes
    /// of mono-attribute binning were used directly (per-attribute
    /// k-anonymity only; see `BinningAgent::bin_per_attribute`).
    PerAttribute,
}

/// Result of multi-attribute binning.
#[derive(Debug, Clone)]
pub struct MultiBinning {
    /// Ultimate generalization nodes, one set per input column, in input
    /// order.
    pub ultimate: Vec<GeneralizationSet>,
    /// Whether the returned generalization satisfies k-anonymity over the
    /// combination of all columns.
    pub satisfied: bool,
    /// Which search mode was used.
    pub mode: SearchMode,
    /// Notes about fallbacks or unbinnable data.
    pub warnings: Vec<String>,
}

/// `GenUltiNd(mingends[], maxgends[], tr[])`: choose the ultimate
/// generalization nodes for all columns simultaneously, sharding the search
/// over `threads` scoped worker threads (1 = sequential; every thread count
/// produces an identical result).
pub fn generate_ultimate_nodes(
    table: &Table,
    columns: &[ColumnContext<'_>],
    k: usize,
    selection: SelectionStrategy,
    exhaustive_limit: usize,
    threads: usize,
) -> Result<MultiBinning, BinningError> {
    if k == 0 {
        return Err(BinningError::InvalidK);
    }
    if threads == 0 {
        return Err(BinningError::InvalidThreads);
    }
    if columns.is_empty() {
        return Ok(MultiBinning {
            ultimate: Vec::new(),
            satisfied: true,
            mode: SearchMode::Exhaustive,
            warnings: Vec::new(),
        });
    }

    let leaves = TableLeaves::build(table, columns)?;

    // Decide the search mode from the size of the combination space.
    let mut product: usize = 1;
    for c in columns {
        let n = GeneralizationSet::count_between(c.tree, c.minimal, c.maximal)
            .map_err(BinningError::Dht)?;
        product = product.saturating_mul(n);
    }

    if product <= exhaustive_limit {
        let plan = SearchPlan::build(columns, &leaves, selection, exhaustive_limit)?;
        exhaustive_search(&plan, &leaves, columns, k, threads)
    } else {
        greedy_search(columns, &leaves, k, selection, threads)
    }
}

/// One row's bin key packed into a `u64` via the per-column strides.
fn packed_key(leaves: &TableLeaves, covers: &[&[NodeId]], strides: &[u64], row: usize) -> u64 {
    covers
        .iter()
        .enumerate()
        .map(|(col, cover)| cover[leaves.row_leaf_ix[col][row] as usize].0 as u64 * strides[col])
        .sum()
}

/// One row's bin key as the vector of covering nodes (the overflow fallback).
fn vec_key(leaves: &TableLeaves, covers: &[&[NodeId]], row: usize) -> Vec<NodeId> {
    covers
        .iter()
        .enumerate()
        .map(|(col, cover)| cover[leaves.row_leaf_ix[col][row] as usize])
        .collect()
}

/// True if every bin over `keys` holds at least `k` rows (count-only fast
/// path for the exhaustive scan).
fn all_bins_at_least<K: Eq + std::hash::Hash>(keys: impl Iterator<Item = K>, k: usize) -> bool {
    let mut bins: HashMap<K, usize> = HashMap::new();
    for key in keys {
        *bins.entry(key).or_insert(0) += 1;
    }
    bins.values().all(|&n| n >= k)
}

/// True if every bin of the candidate combination (given per-column dense
/// covering maps) holds at least `k` rows.
fn bins_satisfy_k(
    leaves: &TableLeaves,
    covers: &[&[NodeId]],
    strides: Option<&[u64]>,
    k: usize,
) -> bool {
    let rows = leaves.rows();
    if k <= 1 || rows == 0 {
        return true;
    }
    match strides {
        Some(strides) => {
            all_bins_at_least((0..rows).map(|row| packed_key(leaves, covers, strides, row)), k)
        }
        None => all_bins_at_least((0..rows).map(|row| vec_key(leaves, covers, row)), k),
    }
}

/// Rows belonging to under-`k` bins of the combination (sorted, so the result
/// is independent of hash-map iteration order).
fn undersized_bin_rows(
    leaves: &TableLeaves,
    covers: &[&[NodeId]],
    strides: Option<&[u64]>,
    k: usize,
) -> Vec<usize> {
    let rows = leaves.rows();
    match strides {
        Some(strides) => medshield_metrics::undersized_rows(
            (0..rows).map(|row| packed_key(leaves, covers, strides, row)),
            k,
        ),
        None => {
            medshield_metrics::undersized_rows((0..rows).map(|row| vec_key(leaves, covers, row)), k)
        }
    }
}

/// Largest dense bin-key space the scratch counter will allocate (slots of
/// `u32`); candidates whose per-column bin counts multiply past this fall
/// back to the hashed key path.
const DENSE_BIN_CAP: usize = 1 << 22;

/// Reusable scratch state for the dense candidate-validity check, so the hot
/// candidate loop performs no per-candidate allocation.
#[derive(Default)]
struct BinScratch {
    /// Dense bin counts, grown to the largest key space seen; only the
    /// `touched` slots are ever non-zero between candidates.
    counts: Vec<u32>,
    /// Keys dirtied by the current candidate (clearing is O(distinct bins),
    /// not O(key space)).
    touched: Vec<u32>,
    /// Per-row packed bin keys, accumulated column by column.
    keys: Vec<usize>,
    /// Mixed-radix strides over the candidate's per-column bin counts.
    strides: Vec<usize>,
}

/// True if every bin of the candidate (given as per-column option digits)
/// holds at least `k` rows. The check is a branchless column scan: each
/// column adds `bin_ix[leaf_ix] * stride` into the per-row key buffer, then
/// a single counting pass over the packed keys tallies the dense scratch
/// array. Equivalent to the hashed [`bins_satisfy_k`] (which remains as the
/// overflow fallback for astronomically wide key spaces).
fn candidate_satisfies_k(
    plan: &SearchPlan,
    leaves: &TableLeaves,
    digits: &[usize],
    k: usize,
    scratch: &mut BinScratch,
) -> bool {
    let rows = leaves.rows();
    if k <= 1 || rows == 0 {
        return true;
    }
    scratch.strides.clear();
    let mut total: usize = 1;
    for (c, &d) in plan.columns.iter().zip(digits) {
        scratch.strides.push(total);
        total = total.saturating_mul(c.bin_counts[d].max(1));
        if total > DENSE_BIN_CAP {
            let covers: Vec<&[NodeId]> =
                plan.columns.iter().zip(digits).map(|(c, &d)| c.covers[d].as_slice()).collect();
            let strides = plan.packed_keys.then_some(plan.key_strides.as_slice());
            return bins_satisfy_k(leaves, &covers, strides, k);
        }
    }
    if scratch.counts.len() < total {
        scratch.counts.resize(total, 0);
    }
    scratch.keys.clear();
    scratch.keys.resize(rows, 0);
    for (col, (c, &d)) in plan.columns.iter().zip(digits).enumerate() {
        let bin_ix = &c.bin_ix[d];
        let stride = scratch.strides[col];
        for (key, &leaf_ix) in scratch.keys.iter_mut().zip(&leaves.row_leaf_ix[col]) {
            *key += bin_ix[leaf_ix as usize] as usize * stride;
        }
    }
    for &key in &scratch.keys {
        let slot = &mut scratch.counts[key];
        if *slot == 0 {
            scratch.touched.push(key as u32);
        }
        *slot += 1;
    }
    let mut ok = true;
    for &key in &scratch.touched {
        ok &= scratch.counts[key as usize] >= k as u32;
        scratch.counts[key as usize] = 0;
    }
    scratch.touched.clear();
    ok
}

/// Best candidate of one contiguous linear-index range: the valid candidate
/// with the lowest score, ties broken by the lowest index.
fn best_in_range(
    plan: &SearchPlan,
    leaves: &TableLeaves,
    k: usize,
    start: usize,
    end: usize,
) -> Option<(f64, usize)> {
    let mut scratch = BinScratch::default();
    let mut digits = plan.decode(start);
    let mut best: Option<(f64, usize)> = None;
    for idx in start..end {
        // Score first: the score is a handful of table lookups while the
        // validity check costs a full row scan, and a candidate whose score
        // is not strictly below the running best can never replace it (ties
        // go to the lower index, which this ascending scan saw first) — so
        // the row scan is skipped for all but the descending-score chain.
        let score = plan.candidate_score(&digits);
        if best.as_ref().map(|(s, _)| score < *s).unwrap_or(true)
            && candidate_satisfies_k(plan, leaves, &digits, k, &mut scratch)
        {
            best = Some((score, idx));
        }
        plan.advance(&mut digits);
    }
    best
}

/// The merge rule for per-shard bests: lowest score wins, ties go to the
/// lowest candidate index. Folding shards in ascending-range order therefore
/// reproduces the sequential scan exactly.
fn better_candidate(a: Option<(f64, usize)>, b: Option<(f64, usize)>) -> Option<(f64, usize)> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some((sa, ia)), Some((sb, ib))) => {
            if sb < sa || (sb == sa && ib < ia) {
                Some((sb, ib))
            } else {
                Some((sa, ia))
            }
        }
    }
}

/// Exhaustive `EnumGen` + `Selection`, sharded over the candidate space.
fn exhaustive_search(
    plan: &SearchPlan,
    leaves: &TableLeaves,
    columns: &[ColumnContext<'_>],
    k: usize,
    threads: usize,
) -> Result<MultiBinning, BinningError> {
    let total = plan.total_candidates();
    let workers = threads.min(total).max(1);
    let best = if workers == 1 {
        best_in_range(plan, leaves, k, 0, total)
    } else {
        let chunk = total.div_ceil(workers);
        let shard_bests: Vec<Option<(f64, usize)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let start = w * chunk;
                    let end = (start + chunk).min(total);
                    scope.spawn(move || best_in_range(plan, leaves, k, start, end))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("search worker panicked")).collect()
        });
        shard_bests.into_iter().fold(None, better_candidate)
    };

    let mut warnings = Vec::new();
    match best {
        Some((_, idx)) => {
            let ultimate: Vec<GeneralizationSet> = plan
                .columns
                .iter()
                .zip(plan.decode(idx))
                .map(|(c, d)| c.options[d].clone())
                .collect();
            Ok(MultiBinning { ultimate, satisfied: true, mode: SearchMode::Exhaustive, warnings })
        }
        None => {
            // Not even the all-maximal combination satisfies k: the data are
            // not binnable within the usage metrics. Return the maximal
            // generalization as the best effort.
            warnings.push(format!(
                "no allowable generalization satisfies k={k}; returning the maximal generalization"
            ));
            let ultimate: Vec<GeneralizationSet> =
                columns.iter().map(|c| c.maximal.clone()).collect();
            Ok(MultiBinning { ultimate, satisfied: false, mode: SearchMode::Exhaustive, warnings })
        }
    }
}

/// One candidate merge of the greedy frontier: collapse `children` (all
/// current generalization nodes) into `parent` on column `column`.
#[derive(Debug, Clone)]
struct MergeCandidate {
    column: usize,
    parent: NodeId,
    children: Vec<NodeId>,
}

/// Greedy coarsening fallback for large combination spaces. The frontier of
/// candidate merges is evaluated in parallel chunks; the pick is made by a
/// total order (benefit ratio, then loss delta, then candidate index), so the
/// result is identical for every thread count.
fn greedy_search(
    columns: &[ColumnContext<'_>],
    leaves: &TableLeaves,
    k: usize,
    selection: SelectionStrategy,
    threads: usize,
) -> Result<MultiBinning, BinningError> {
    let mut warnings = Vec::new();
    let strides_buf = crate::plan::key_strides_for(columns);
    let strides = strides_buf.as_deref();
    // Entries per occurring leaf, node-keyed (for the merge-score deltas).
    let leaf_counts: Vec<HashMap<NodeId, usize>> =
        (0..columns.len()).map(|i| leaves.leaf_count_map(i)).collect();
    // Current generalization per column, as an ordered node set.
    let mut current: Vec<BTreeMap<NodeId, ()>> =
        columns.iter().map(|c| c.minimal.nodes().iter().map(|&n| (n, ())).collect()).collect();
    // Dense covering maps for the occurring leaves (indexed by compact leaf
    // index, like the plan's per-option covers).
    let mut covers: Vec<Vec<NodeId>> = Vec::with_capacity(columns.len());
    for (i, c) in columns.iter().enumerate() {
        let mut cover = Vec::with_capacity(leaves.leaves[i].len());
        for &leaf in &leaves.leaves[i] {
            cover.push(c.minimal.covering_node(c.tree, leaf).map_err(BinningError::Dht)?);
        }
        covers.push(cover);
    }

    loop {
        let cover_refs: Vec<&[NodeId]> = covers.iter().map(Vec::as_slice).collect();
        let violating_rows = undersized_bin_rows(leaves, &cover_refs, strides, k);
        if violating_rows.is_empty() {
            break;
        }
        // How many violating rows each covering node holds, per column: the
        // "benefit" of a merge is the number of violating rows it touches.
        let violating_counts: Vec<HashMap<NodeId, usize>> = (0..columns.len())
            .map(|i| {
                let mut m: HashMap<NodeId, usize> = HashMap::new();
                for &row in &violating_rows {
                    *m.entry(covers[i][leaves.row_leaf_ix[i][row] as usize]).or_insert(0) += 1;
                }
                m
            })
            .collect();

        // Enumerate candidate merges in a deterministic (column, parent)
        // order.
        let mut candidates: Vec<MergeCandidate> = Vec::new();
        for (i, c) in columns.iter().enumerate() {
            // Group current nodes by parent.
            let mut by_parent: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
            for &node in current[i].keys() {
                if let Some(parent) = c.tree.parent(node).map_err(BinningError::Dht)? {
                    by_parent.entry(parent).or_default().push(node);
                }
            }
            for (parent, members) in by_parent {
                let children = c.tree.children(parent).map_err(BinningError::Dht)?;
                if members.len() != children.len() {
                    continue; // not all siblings are currently generalization nodes
                }
                // The parent must stay within the usage metrics (at or below a
                // maximal generalization node).
                if c.maximal.covering_node(c.tree, parent).is_err() {
                    continue;
                }
                candidates.push(MergeCandidate { column: i, parent, children: children.to_vec() });
            }
        }

        if candidates.is_empty() {
            warnings.push(format!(
                "greedy multi-attribute binning exhausted all merges without reaching k={k}"
            ));
            break;
        }

        // Score the frontier — (loss delta, violating rows touched) per
        // candidate — in parallel chunks; results come back in candidate
        // order, so the pick below is thread-count independent.
        let workers = threads.min(candidates.len()).max(1);
        let scored: Vec<(f64, usize)> = if workers == 1 {
            score_merges(&candidates, columns, &leaf_counts, &violating_counts, selection)
        } else {
            let chunk = candidates.len().div_ceil(workers);
            let leaf_counts = &leaf_counts;
            let violating_counts = &violating_counts;
            let chunks: Vec<Vec<(f64, usize)>> = thread::scope(|scope| {
                let handles: Vec<_> = candidates
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move || {
                            score_merges(slice, columns, leaf_counts, violating_counts, selection)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("frontier worker panicked")).collect()
            });
            chunks.into_iter().flatten().collect()
        };

        // Pick the merge with the best benefit-per-cost ratio (violating rows
        // touched per unit of added loss), preferring smaller deltas and then
        // lower candidate indices on ties; merges that touch nothing are only
        // considered when no merge touches a violating bin, in which case the
        // cheapest one is taken.
        let any_touching = scored.iter().any(|(_, touched)| *touched > 0);
        let mut pick = 0usize;
        let mut have_pick = false;
        for (idx, &(delta, touched)) in scored.iter().enumerate() {
            if any_touching && touched == 0 {
                continue;
            }
            if !have_pick {
                pick = idx;
                have_pick = true;
                continue;
            }
            let (best_delta, best_touched) = scored[pick];
            let better = if any_touching {
                let ratio = touched as f64 / (delta + 1e-9);
                let best_ratio = best_touched as f64 / (best_delta + 1e-9);
                ratio > best_ratio || (ratio == best_ratio && delta < best_delta)
            } else {
                delta < best_delta
            };
            if better {
                pick = idx;
            }
        }

        let MergeCandidate { column: col, parent, children } = candidates[pick].clone();
        for ch in &children {
            current[col].remove(ch);
        }
        current[col].insert(parent, ());
        for cover in covers[col].iter_mut() {
            if children.contains(cover) {
                *cover = parent;
            }
        }
    }

    // Materialize and validate the final sets.
    let mut ultimate = Vec::with_capacity(columns.len());
    for (i, c) in columns.iter().enumerate() {
        let nodes: Vec<NodeId> = current[i].keys().copied().collect();
        ultimate.push(GeneralizationSet::new(c.tree, nodes).map_err(BinningError::Dht)?);
    }
    let cover_refs: Vec<&[NodeId]> = covers.iter().map(Vec::as_slice).collect();
    let satisfied = undersized_bin_rows(leaves, &cover_refs, strides, k).is_empty();
    Ok(MultiBinning { ultimate, satisfied, mode: SearchMode::Greedy, warnings })
}

/// Evaluate a slice of the greedy frontier: loss delta and violating rows
/// touched for every candidate merge, in slice order.
fn score_merges(
    candidates: &[MergeCandidate],
    columns: &[ColumnContext<'_>],
    leaf_counts: &[HashMap<NodeId, usize>],
    violating_counts: &[HashMap<NodeId, usize>],
    selection: SelectionStrategy,
) -> Vec<(f64, usize)> {
    candidates
        .iter()
        .map(|m| {
            let delta = merge_score_delta(
                columns[m.column].tree,
                &leaf_counts[m.column],
                m.parent,
                &m.children,
                selection,
            );
            let touched: usize = m
                .children
                .iter()
                .map(|ch| violating_counts[m.column].get(ch).copied().unwrap_or(0))
                .sum();
            (delta, touched)
        })
        .collect()
}

/// Increase in the column score caused by merging `children` into `parent`.
fn merge_score_delta(
    tree: &DomainHierarchyTree,
    leaf_counts: &HashMap<NodeId, usize>,
    parent: NodeId,
    children: &[NodeId],
    selection: SelectionStrategy,
) -> f64 {
    match selection {
        SelectionStrategy::SpecificityLoss => {
            (children.len() as f64 - 1.0) / tree.leaf_count().max(1) as f64
        }
        SelectionStrategy::FullInfoLoss => {
            let total: usize = leaf_counts.values().sum();
            if total == 0 {
                return 0.0;
            }
            let entries_under = |node: NodeId| -> usize {
                tree.leaves_under(node)
                    .map(|ls| ls.iter().map(|l| leaf_counts.get(l).copied().unwrap_or(0)).sum())
                    .unwrap_or(0)
            };
            match tree.kind() {
                DhtKind::Categorical => {
                    let s = tree.leaf_count() as f64;
                    let parent_cost = entries_under(parent) as f64
                        * (tree.leaf_count_under(parent).unwrap_or(1) as f64 - 1.0)
                        / s;
                    let child_cost: f64 = children
                        .iter()
                        .map(|&c| {
                            entries_under(c) as f64
                                * (tree.leaf_count_under(c).unwrap_or(1) as f64 - 1.0)
                                / s
                        })
                        .sum();
                    (parent_cost - child_cost) / total as f64
                }
                DhtKind::Numeric => {
                    let (lo, hi) = tree
                        .node(tree.root())
                        .expect("root exists")
                        .interval
                        .expect("numeric root interval");
                    let span = (hi - lo) as f64;
                    let width = |n: NodeId| {
                        let (l, h) = tree.node(n).expect("node").interval.expect("interval");
                        (h - l) as f64
                    };
                    let parent_cost = entries_under(parent) as f64 * width(parent) / span;
                    let child_cost: f64 =
                        children.iter().map(|&c| entries_under(c) as f64 * width(c) / span).sum();
                    (parent_cost - child_cost) / total as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_dht::builder::{numeric_binary_tree, CategoricalNodeSpec};
    use medshield_relation::{ColumnDef, ColumnRole, Schema, Value};

    fn two_column_table() -> (Table, DomainHierarchyTree, DomainHierarchyTree) {
        let doctor_tree = CategoricalNodeSpec::internal(
            "Staff",
            vec![
                CategoricalNodeSpec::internal(
                    "Doctor",
                    vec![
                        CategoricalNodeSpec::leaf("Surgeon"),
                        CategoricalNodeSpec::leaf("Physician"),
                    ],
                ),
                CategoricalNodeSpec::internal(
                    "Paramedic",
                    vec![
                        CategoricalNodeSpec::leaf("Nurse"),
                        CategoricalNodeSpec::leaf("Pharmacist"),
                    ],
                ),
            ],
        )
        .build("doctor")
        .unwrap();
        let age_tree =
            numeric_binary_tree("age", &[(0, 25), (25, 50), (50, 75), (75, 100)]).unwrap();

        let schema = Schema::new(vec![
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
            ColumnDef::new("doctor", ColumnRole::QuasiCategorical),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        // Mirrors the paper's §4.2 example: each attribute alone is
        // k-anonymous, the combination is not.
        let rows = [
            (10, "Surgeon"),
            (12, "Surgeon"),
            (30, "Surgeon"),
            (35, "Physician"),
            (60, "Nurse"),
            (65, "Nurse"),
            (80, "Pharmacist"),
            (85, "Pharmacist"),
        ];
        for (age, doc) in rows {
            t.insert(vec![Value::int(age), Value::text(doc)]).unwrap();
        }
        (t, age_tree, doctor_tree)
    }

    fn contexts<'a>(
        age_tree: &'a DomainHierarchyTree,
        doctor_tree: &'a DomainHierarchyTree,
        age_min: &'a GeneralizationSet,
        age_max: &'a GeneralizationSet,
        doc_min: &'a GeneralizationSet,
        doc_max: &'a GeneralizationSet,
    ) -> Vec<ColumnContext<'a>> {
        vec![
            ColumnContext { column: "age", tree: age_tree, minimal: age_min, maximal: age_max },
            ColumnContext {
                column: "doctor",
                tree: doctor_tree,
                minimal: doc_min,
                maximal: doc_max,
            },
        ]
    }

    /// Check k-anonymity of the chosen generalization by materializing it.
    fn satisfies(
        table: &Table,
        columns: &[(&str, &DomainHierarchyTree)],
        gens: &[GeneralizationSet],
        k: usize,
    ) -> bool {
        let mut t = table.snapshot();
        for id in t.ids() {
            for ((col, tree), g) in columns.iter().zip(gens.iter()) {
                let v = t.value(id, col).unwrap().clone();
                let gv = g.generalize_value(tree, &v).unwrap();
                t.set_value(id, col, gv).unwrap();
            }
        }
        let names: Vec<&str> = columns.iter().map(|(c, _)| *c).collect();
        medshield_metrics::satisfies_k_anonymity(&t, &names, k).unwrap()
    }

    #[test]
    fn exhaustive_finds_a_valid_minimal_loss_generalization() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);

        let r = generate_ultimate_nodes(
            &table,
            &ctxs,
            2,
            SelectionStrategy::SpecificityLoss,
            10_000,
            1,
        )
        .unwrap();
        assert_eq!(r.mode, SearchMode::Exhaustive);
        assert!(r.satisfied);
        assert!(satisfies(&table, &[("age", &age_tree), ("doctor", &doctor_tree)], &r.ultimate, 2));
        // The chosen generalization must not be the trivial all-root one:
        // the data allow something finer (e.g. age halves + doctor level 1).
        let total_nodes: usize = r.ultimate.iter().map(medshield_dht::GeneralizationSet::len).sum();
        assert!(total_nodes > 2, "should be finer than root-only on both columns");
    }

    #[test]
    fn parallel_search_matches_sequential_exactly() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);
        // Both search modes (exhaustive via a large limit, greedy via limit 1)
        // must be thread-count independent.
        for limit in [10_000usize, 1] {
            let reference = generate_ultimate_nodes(
                &table,
                &ctxs,
                2,
                SelectionStrategy::SpecificityLoss,
                limit,
                1,
            )
            .unwrap();
            for threads in [2usize, 3, 4, 8, 64] {
                let r = generate_ultimate_nodes(
                    &table,
                    &ctxs,
                    2,
                    SelectionStrategy::SpecificityLoss,
                    limit,
                    threads,
                )
                .unwrap();
                assert_eq!(r.ultimate, reference.ultimate, "limit {limit}, threads {threads}");
                assert_eq!(r.satisfied, reference.satisfied);
                assert_eq!(r.mode, reference.mode);
                assert_eq!(r.warnings, reference.warnings);
            }
        }
    }

    #[test]
    fn greedy_matches_exhaustive_feasibility() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);

        // Force the greedy path with a tiny exhaustive limit.
        let r = generate_ultimate_nodes(&table, &ctxs, 2, SelectionStrategy::SpecificityLoss, 1, 2)
            .unwrap();
        assert_eq!(r.mode, SearchMode::Greedy);
        assert!(r.satisfied);
        assert!(satisfies(&table, &[("age", &age_tree), ("doctor", &doctor_tree)], &r.ultimate, 2));
        // Ultimate nodes stay within the usage metrics.
        for (g, ctx) in r.ultimate.iter().zip(&ctxs) {
            assert!(g.is_at_or_below(ctx.tree, ctx.maximal).unwrap());
        }
    }

    #[test]
    fn full_info_loss_selection_also_works() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);
        for limit in [1usize, 10_000] {
            for threads in [1usize, 4] {
                let r = generate_ultimate_nodes(
                    &table,
                    &ctxs,
                    2,
                    SelectionStrategy::FullInfoLoss,
                    limit,
                    threads,
                )
                .unwrap();
                assert!(r.satisfied, "limit {limit}");
                assert!(satisfies(
                    &table,
                    &[("age", &age_tree), ("doctor", &doctor_tree)],
                    &r.ultimate,
                    2
                ));
            }
        }
    }

    #[test]
    fn unbinnable_data_reports_unsatisfied() {
        let (table, age_tree, doctor_tree) = two_column_table();
        // Usage metrics forbid any generalization (maximal = leaves), so
        // k = 2 over the combination cannot be met.
        let age_leaves = GeneralizationSet::all_leaves(&age_tree);
        let doc_leaves = GeneralizationSet::all_leaves(&doctor_tree);
        let ctxs =
            contexts(&age_tree, &doctor_tree, &age_leaves, &age_leaves, &doc_leaves, &doc_leaves);
        for limit in [1usize, 10_000] {
            let r = generate_ultimate_nodes(
                &table,
                &ctxs,
                2,
                SelectionStrategy::SpecificityLoss,
                limit,
                2,
            )
            .unwrap();
            assert!(!r.satisfied, "limit {limit}");
            assert!(!r.warnings.is_empty());
        }
    }

    #[test]
    fn k_one_keeps_the_minimal_generalization() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);
        let r = generate_ultimate_nodes(
            &table,
            &ctxs,
            1,
            SelectionStrategy::SpecificityLoss,
            10_000,
            1,
        )
        .unwrap();
        assert!(r.satisfied);
        // With k=1 nothing needs generalizing, so the minimal (all-leaves)
        // generalization is optimal under both scores.
        assert_eq!(r.ultimate[0], age_min);
        assert_eq!(r.ultimate[1], doc_min);
    }

    #[test]
    fn empty_column_list_is_trivially_satisfied() {
        let (table, _, _) = two_column_table();
        let r = generate_ultimate_nodes(&table, &[], 5, SelectionStrategy::SpecificityLoss, 10, 1)
            .unwrap();
        assert!(r.satisfied);
        assert!(r.ultimate.is_empty());
    }

    #[test]
    fn k_zero_rejected() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);
        assert!(matches!(
            generate_ultimate_nodes(&table, &ctxs, 0, SelectionStrategy::SpecificityLoss, 10, 1),
            Err(BinningError::InvalidK)
        ));
    }

    #[test]
    fn zero_threads_rejected() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);
        assert!(matches!(
            generate_ultimate_nodes(&table, &ctxs, 2, SelectionStrategy::SpecificityLoss, 10, 0),
            Err(BinningError::InvalidThreads)
        ));
    }
}

//! Multi-attribute binning: `GenUltiNd` (Fig. 7 of the paper).
//!
//! After mono-attribute binning each attribute satisfies k-anonymity on its
//! own, but combinations of attributes may not (§4.2). Multi-attribute
//! binning therefore searches, per column, the allowable generalizations
//! lying between the minimal and the maximal generalization nodes, and picks
//! the combination — the **ultimate generalization** — that satisfies
//! k-anonymity over the full quasi-identifier set with the least loss.
//!
//! Two search modes are provided:
//!
//! * **Exhaustive** (the paper's `EnumGen` + `Selection`): enumerate every
//!   combination of allowable generalizations, keep the valid ones, choose
//!   the one minimizing the selection score. Used whenever the number of
//!   combinations is at most [`crate::BinningConfig::exhaustive_limit`].
//! * **Greedy coarsening** (scalability fallback, documented in DESIGN.md):
//!   start from the minimal generalization of every column and repeatedly
//!   apply the cheapest single merge (collapsing a sibling group into its
//!   parent, never above the maximal nodes), preferring merges that touch a
//!   violating bin, until k-anonymity holds or no merge is left.
//!
//! The selection score is either specificity loss (the paper's preferred
//! estimate) or the full information loss of Eq. (1)–(3), per
//! [`SelectionStrategy`].

use crate::config::SelectionStrategy;
use crate::error::BinningError;
use medshield_dht::{DhtKind, DomainHierarchyTree, GeneralizationSet, NodeId};
use medshield_relation::Table;
use std::collections::{BTreeMap, HashMap};

/// Per-column input to multi-attribute binning.
#[derive(Debug, Clone)]
pub struct ColumnContext<'a> {
    /// Column name.
    pub column: &'a str,
    /// The column's domain hierarchy tree.
    pub tree: &'a DomainHierarchyTree,
    /// Minimal generalization nodes from mono-attribute binning.
    pub minimal: &'a GeneralizationSet,
    /// Maximal generalization nodes from the usage metrics.
    pub maximal: &'a GeneralizationSet,
}

/// Which search mode produced the ultimate generalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Exhaustive enumeration of all allowable combinations.
    Exhaustive,
    /// Greedy coarsening fallback.
    Greedy,
    /// Multi-attribute binning was skipped: the minimal generalization nodes
    /// of mono-attribute binning were used directly (per-attribute
    /// k-anonymity only; see `BinningAgent::bin_per_attribute`).
    PerAttribute,
}

/// Result of multi-attribute binning.
#[derive(Debug, Clone)]
pub struct MultiBinning {
    /// Ultimate generalization nodes, one set per input column, in input
    /// order.
    pub ultimate: Vec<GeneralizationSet>,
    /// Whether the returned generalization satisfies k-anonymity over the
    /// combination of all columns.
    pub satisfied: bool,
    /// Which search mode was used.
    pub mode: SearchMode,
    /// Notes about fallbacks or unbinnable data.
    pub warnings: Vec<String>,
}

/// `GenUltiNd(mingends[], maxgends[], tr[])`: choose the ultimate
/// generalization nodes for all columns simultaneously.
pub fn generate_ultimate_nodes(
    table: &Table,
    columns: &[ColumnContext<'_>],
    k: usize,
    selection: SelectionStrategy,
    exhaustive_limit: usize,
) -> Result<MultiBinning, BinningError> {
    if k == 0 {
        return Err(BinningError::InvalidK);
    }
    if columns.is_empty() {
        return Ok(MultiBinning {
            ultimate: Vec::new(),
            satisfied: true,
            mode: SearchMode::Exhaustive,
            warnings: Vec::new(),
        });
    }

    // Per column: the leaf node of every row (row order follows table.iter()).
    let row_leaves: Vec<Vec<NodeId>> =
        columns.iter().map(|c| leaves_per_row(table, c)).collect::<Result<_, _>>()?;
    // Per column: entries per leaf (for scoring).
    let leaf_counts: Vec<HashMap<NodeId, usize>> = row_leaves
        .iter()
        .map(|rows| {
            let mut m = HashMap::new();
            for &l in rows {
                *m.entry(l).or_insert(0) += 1;
            }
            m
        })
        .collect();

    // Decide the search mode from the size of the combination space.
    let mut product: usize = 1;
    for c in columns {
        let n = GeneralizationSet::count_between(c.tree, c.minimal, c.maximal)
            .map_err(BinningError::Dht)?;
        product = product.saturating_mul(n);
    }

    if product <= exhaustive_limit {
        exhaustive_search(table, columns, &row_leaves, &leaf_counts, k, selection, exhaustive_limit)
    } else {
        greedy_search(columns, &row_leaves, &leaf_counts, k, selection)
    }
}

/// Map every row of the table to its leaf node in the column's tree.
fn leaves_per_row(table: &Table, ctx: &ColumnContext<'_>) -> Result<Vec<NodeId>, BinningError> {
    let mut memo: HashMap<medshield_relation::Value, NodeId> = HashMap::new();
    let mut out = Vec::with_capacity(table.len());
    for v in table.column_values(ctx.column)? {
        let leaf = match memo.get(v) {
            Some(&l) => l,
            None => {
                let l = ctx.tree.leaf_for_value(v).map_err(BinningError::Dht)?;
                memo.insert(v.clone(), l);
                l
            }
        };
        out.push(leaf);
    }
    Ok(out)
}

/// Build the leaf → covering-generalization-node map for the leaves that
/// actually occur in the data.
fn covering_map(
    tree: &DomainHierarchyTree,
    generalization: &GeneralizationSet,
    leaves: &HashMap<NodeId, usize>,
) -> Result<HashMap<NodeId, NodeId>, BinningError> {
    let mut map = HashMap::with_capacity(leaves.len());
    for &leaf in leaves.keys() {
        let cover = generalization.covering_node(tree, leaf).map_err(BinningError::Dht)?;
        map.insert(leaf, cover);
    }
    Ok(map)
}

/// Smallest bin size of the combination defined by the per-column covering
/// maps, together with the rows belonging to under-k bins.
fn evaluate_bins(
    row_leaves: &[Vec<NodeId>],
    covers: &[HashMap<NodeId, NodeId>],
    k: usize,
) -> (bool, Vec<usize>) {
    let rows = row_leaves.first().map(|r| r.len()).unwrap_or(0);
    let mut bins: HashMap<Vec<NodeId>, Vec<usize>> = HashMap::new();
    for row in 0..rows {
        let key: Vec<NodeId> = row_leaves
            .iter()
            .zip(covers.iter())
            .map(|(leaves, cover)| cover[&leaves[row]])
            .collect();
        bins.entry(key).or_default().push(row);
    }
    let mut violating = Vec::new();
    for members in bins.values() {
        if members.len() < k {
            violating.extend_from_slice(members);
        }
    }
    (violating.is_empty(), violating)
}

/// Score of one column's generalization from its leaf counts (lower is
/// better). Specificity loss ignores the data distribution; full information
/// loss is Eq. (1)/(2) computed from the counts.
fn column_score(
    tree: &DomainHierarchyTree,
    generalization: &GeneralizationSet,
    leaf_counts: &HashMap<NodeId, usize>,
    cover: &HashMap<NodeId, NodeId>,
    selection: SelectionStrategy,
) -> f64 {
    match selection {
        SelectionStrategy::SpecificityLoss => generalization.specificity_loss(tree),
        SelectionStrategy::FullInfoLoss => {
            let total: usize = leaf_counts.values().sum();
            if total == 0 {
                return 0.0;
            }
            // Aggregate entries per generalization node.
            let mut per_node: HashMap<NodeId, usize> = HashMap::new();
            for (leaf, count) in leaf_counts {
                *per_node.entry(cover[leaf]).or_insert(0) += count;
            }
            let loss_sum: f64 = match tree.kind() {
                DhtKind::Categorical => {
                    let s = tree.leaf_count() as f64;
                    per_node
                        .iter()
                        .map(|(&node, &n)| {
                            let si = tree.leaf_count_under(node).unwrap_or(1) as f64;
                            n as f64 * (si - 1.0) / s
                        })
                        .sum()
                }
                DhtKind::Numeric => {
                    let (lo, hi) = tree
                        .node(tree.root())
                        .expect("root exists")
                        .interval
                        .expect("numeric root interval");
                    let span = (hi - lo) as f64;
                    per_node
                        .iter()
                        .map(|(&node, &n)| {
                            let (l, h) = tree
                                .node(node)
                                .expect("node exists")
                                .interval
                                .expect("numeric node interval");
                            n as f64 * ((h - l) as f64) / span
                        })
                        .sum()
                }
            };
            loss_sum / total as f64
        }
    }
}

/// Exhaustive `EnumGen` + `Selection`.
fn exhaustive_search(
    _table: &Table,
    columns: &[ColumnContext<'_>],
    row_leaves: &[Vec<NodeId>],
    leaf_counts: &[HashMap<NodeId, usize>],
    k: usize,
    selection: SelectionStrategy,
    exhaustive_limit: usize,
) -> Result<MultiBinning, BinningError> {
    // Per-column option lists.
    let mut options: Vec<Vec<GeneralizationSet>> = Vec::with_capacity(columns.len());
    for c in columns {
        let opts =
            GeneralizationSet::enumerate_between(c.tree, c.minimal, c.maximal, exhaustive_limit)
                .map_err(BinningError::Dht)?;
        options.push(opts);
    }

    // Iterate the cartesian product by mixed-radix counting.
    let radices: Vec<usize> = options.iter().map(|o| o.len()).collect();
    let total: usize = radices.iter().product();
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut warnings = Vec::new();

    let mut indices = vec![0usize; columns.len()];
    for _ in 0..total {
        // Build covering maps for this combination.
        let mut covers = Vec::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            covers.push(covering_map(c.tree, &options[i][indices[i]], &leaf_counts[i])?);
        }
        let (ok, _violating) = evaluate_bins(row_leaves, &covers, k);
        if ok {
            let score: f64 = columns
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    column_score(
                        c.tree,
                        &options[i][indices[i]],
                        &leaf_counts[i],
                        &covers[i],
                        selection,
                    )
                })
                .sum();
            if best.as_ref().map(|(s, _)| score < *s).unwrap_or(true) {
                best = Some((score, indices.clone()));
            }
        }
        // Advance the mixed-radix counter.
        for d in 0..indices.len() {
            indices[d] += 1;
            if indices[d] < radices[d] {
                break;
            }
            indices[d] = 0;
        }
    }

    match best {
        Some((_, idx)) => {
            let ultimate: Vec<GeneralizationSet> =
                idx.iter().enumerate().map(|(i, &j)| options[i][j].clone()).collect();
            Ok(MultiBinning { ultimate, satisfied: true, mode: SearchMode::Exhaustive, warnings })
        }
        None => {
            // Not even the all-maximal combination satisfies k: the data are
            // not binnable within the usage metrics. Return the maximal
            // generalization as the best effort.
            warnings.push(format!(
                "no allowable generalization satisfies k={k}; returning the maximal generalization"
            ));
            let ultimate: Vec<GeneralizationSet> =
                columns.iter().map(|c| c.maximal.clone()).collect();
            Ok(MultiBinning { ultimate, satisfied: false, mode: SearchMode::Exhaustive, warnings })
        }
    }
}

/// Greedy coarsening fallback for large combination spaces.
fn greedy_search(
    columns: &[ColumnContext<'_>],
    row_leaves: &[Vec<NodeId>],
    leaf_counts: &[HashMap<NodeId, usize>],
    k: usize,
    selection: SelectionStrategy,
) -> Result<MultiBinning, BinningError> {
    let mut warnings = Vec::new();
    // Current generalization per column, as a node set.
    let mut current: Vec<BTreeMap<NodeId, ()>> =
        columns.iter().map(|c| c.minimal.nodes().iter().map(|&n| (n, ())).collect()).collect();
    // Covering maps for the present leaves.
    let mut covers: Vec<HashMap<NodeId, NodeId>> = Vec::with_capacity(columns.len());
    for (i, c) in columns.iter().enumerate() {
        covers.push(covering_map(c.tree, c.minimal, &leaf_counts[i])?);
    }

    loop {
        let (ok, violating_rows) = evaluate_bins(row_leaves, &covers, k);
        if ok {
            break;
        }
        // How many violating rows each covering node holds, per column: the
        // "benefit" of a merge is the number of violating rows it touches.
        let violating_counts: Vec<HashMap<NodeId, usize>> = (0..columns.len())
            .map(|i| {
                let mut m: HashMap<NodeId, usize> = HashMap::new();
                for &row in &violating_rows {
                    *m.entry(covers[i][&row_leaves[i][row]]).or_insert(0) += 1;
                }
                m
            })
            .collect();

        // Enumerate candidate merges: (column, parent, children, loss delta,
        // violating rows touched).
        let mut candidates: Vec<(usize, NodeId, Vec<NodeId>, f64, usize)> = Vec::new();
        for (i, c) in columns.iter().enumerate() {
            // Group current nodes by parent.
            let mut by_parent: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
            for &node in current[i].keys() {
                if let Some(parent) = c.tree.parent(node).map_err(BinningError::Dht)? {
                    by_parent.entry(parent).or_default().push(node);
                }
            }
            for (parent, members) in by_parent {
                let children = c.tree.children(parent).map_err(BinningError::Dht)?;
                if members.len() != children.len() {
                    continue; // not all siblings are currently generalization nodes
                }
                // The parent must stay within the usage metrics (at or below a
                // maximal generalization node).
                if c.maximal.covering_node(c.tree, parent).is_err() {
                    continue;
                }
                let delta = merge_score_delta(c.tree, &leaf_counts[i], parent, children, selection);
                let touched: usize = children
                    .iter()
                    .map(|ch| violating_counts[i].get(ch).copied().unwrap_or(0))
                    .sum();
                candidates.push((i, parent, children.to_vec(), delta, touched));
            }
        }

        if candidates.is_empty() {
            warnings.push(format!(
                "greedy multi-attribute binning exhausted all merges without reaching k={k}"
            ));
            break;
        }

        // Pick the merge with the best benefit-per-cost ratio (violating rows
        // touched per unit of added loss); merges that touch nothing are only
        // considered when no merge touches a violating bin, in which case the
        // cheapest one is taken.
        let any_touching = candidates.iter().any(|(_, _, _, _, touched)| *touched > 0);
        let pick = if any_touching {
            candidates
                .iter()
                .filter(|(_, _, _, _, touched)| *touched > 0)
                .max_by(|a, b| {
                    let score_a = a.4 as f64 / (a.3 + 1e-9);
                    let score_b = b.4 as f64 / (b.3 + 1e-9);
                    score_a
                        .partial_cmp(&score_b)
                        .expect("scores are finite")
                        .then_with(|| b.3.partial_cmp(&a.3).expect("deltas are finite"))
                })
                .cloned()
                .expect("a touching candidate exists")
        } else {
            candidates
                .iter()
                .min_by(|a, b| a.3.partial_cmp(&b.3).expect("deltas are finite"))
                .cloned()
                .expect("candidates is non-empty")
        };

        let (col, parent, children, _, _) = pick;
        for ch in &children {
            current[col].remove(ch);
        }
        current[col].insert(parent, ());
        for cover in covers[col].values_mut() {
            if children.contains(cover) {
                *cover = parent;
            }
        }
    }

    // Materialize and validate the final sets.
    let mut ultimate = Vec::with_capacity(columns.len());
    for (i, c) in columns.iter().enumerate() {
        let nodes: Vec<NodeId> = current[i].keys().copied().collect();
        ultimate.push(GeneralizationSet::new(c.tree, nodes).map_err(BinningError::Dht)?);
    }
    let final_covers: Vec<HashMap<NodeId, NodeId>> = covers;
    let (satisfied, _) = evaluate_bins(row_leaves, &final_covers, k);
    Ok(MultiBinning { ultimate, satisfied, mode: SearchMode::Greedy, warnings })
}

/// Increase in the column score caused by merging `children` into `parent`.
fn merge_score_delta(
    tree: &DomainHierarchyTree,
    leaf_counts: &HashMap<NodeId, usize>,
    parent: NodeId,
    children: &[NodeId],
    selection: SelectionStrategy,
) -> f64 {
    match selection {
        SelectionStrategy::SpecificityLoss => {
            (children.len() as f64 - 1.0) / tree.leaf_count().max(1) as f64
        }
        SelectionStrategy::FullInfoLoss => {
            let total: usize = leaf_counts.values().sum();
            if total == 0 {
                return 0.0;
            }
            let entries_under = |node: NodeId| -> usize {
                tree.leaves_under(node)
                    .map(|ls| ls.iter().map(|l| leaf_counts.get(l).copied().unwrap_or(0)).sum())
                    .unwrap_or(0)
            };
            match tree.kind() {
                DhtKind::Categorical => {
                    let s = tree.leaf_count() as f64;
                    let parent_cost = entries_under(parent) as f64
                        * (tree.leaf_count_under(parent).unwrap_or(1) as f64 - 1.0)
                        / s;
                    let child_cost: f64 = children
                        .iter()
                        .map(|&c| {
                            entries_under(c) as f64
                                * (tree.leaf_count_under(c).unwrap_or(1) as f64 - 1.0)
                                / s
                        })
                        .sum();
                    (parent_cost - child_cost) / total as f64
                }
                DhtKind::Numeric => {
                    let (lo, hi) = tree
                        .node(tree.root())
                        .expect("root exists")
                        .interval
                        .expect("numeric root interval");
                    let span = (hi - lo) as f64;
                    let width = |n: NodeId| {
                        let (l, h) = tree.node(n).expect("node").interval.expect("interval");
                        (h - l) as f64
                    };
                    let parent_cost = entries_under(parent) as f64 * width(parent) / span;
                    let child_cost: f64 =
                        children.iter().map(|&c| entries_under(c) as f64 * width(c) / span).sum();
                    (parent_cost - child_cost) / total as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_dht::builder::{numeric_binary_tree, CategoricalNodeSpec};
    use medshield_relation::{ColumnDef, ColumnRole, Schema, Value};

    fn two_column_table() -> (Table, DomainHierarchyTree, DomainHierarchyTree) {
        let doctor_tree = CategoricalNodeSpec::internal(
            "Staff",
            vec![
                CategoricalNodeSpec::internal(
                    "Doctor",
                    vec![
                        CategoricalNodeSpec::leaf("Surgeon"),
                        CategoricalNodeSpec::leaf("Physician"),
                    ],
                ),
                CategoricalNodeSpec::internal(
                    "Paramedic",
                    vec![
                        CategoricalNodeSpec::leaf("Nurse"),
                        CategoricalNodeSpec::leaf("Pharmacist"),
                    ],
                ),
            ],
        )
        .build("doctor")
        .unwrap();
        let age_tree =
            numeric_binary_tree("age", &[(0, 25), (25, 50), (50, 75), (75, 100)]).unwrap();

        let schema = Schema::new(vec![
            ColumnDef::new("age", ColumnRole::QuasiNumeric),
            ColumnDef::new("doctor", ColumnRole::QuasiCategorical),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        // Mirrors the paper's §4.2 example: each attribute alone is
        // k-anonymous, the combination is not.
        let rows = [
            (10, "Surgeon"),
            (12, "Surgeon"),
            (30, "Surgeon"),
            (35, "Physician"),
            (60, "Nurse"),
            (65, "Nurse"),
            (80, "Pharmacist"),
            (85, "Pharmacist"),
        ];
        for (age, doc) in rows {
            t.insert(vec![Value::int(age), Value::text(doc)]).unwrap();
        }
        (t, age_tree, doctor_tree)
    }

    fn contexts<'a>(
        age_tree: &'a DomainHierarchyTree,
        doctor_tree: &'a DomainHierarchyTree,
        age_min: &'a GeneralizationSet,
        age_max: &'a GeneralizationSet,
        doc_min: &'a GeneralizationSet,
        doc_max: &'a GeneralizationSet,
    ) -> Vec<ColumnContext<'a>> {
        vec![
            ColumnContext { column: "age", tree: age_tree, minimal: age_min, maximal: age_max },
            ColumnContext {
                column: "doctor",
                tree: doctor_tree,
                minimal: doc_min,
                maximal: doc_max,
            },
        ]
    }

    /// Check k-anonymity of the chosen generalization by materializing it.
    fn satisfies(
        table: &Table,
        columns: &[(&str, &DomainHierarchyTree)],
        gens: &[GeneralizationSet],
        k: usize,
    ) -> bool {
        let mut t = table.snapshot();
        for id in t.ids() {
            for ((col, tree), g) in columns.iter().zip(gens.iter()) {
                let v = t.value(id, col).unwrap().clone();
                let gv = g.generalize_value(tree, &v).unwrap();
                t.set_value(id, col, gv).unwrap();
            }
        }
        let names: Vec<&str> = columns.iter().map(|(c, _)| *c).collect();
        medshield_metrics::satisfies_k_anonymity(&t, &names, k).unwrap()
    }

    #[test]
    fn exhaustive_finds_a_valid_minimal_loss_generalization() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);

        let r =
            generate_ultimate_nodes(&table, &ctxs, 2, SelectionStrategy::SpecificityLoss, 10_000)
                .unwrap();
        assert_eq!(r.mode, SearchMode::Exhaustive);
        assert!(r.satisfied);
        assert!(satisfies(&table, &[("age", &age_tree), ("doctor", &doctor_tree)], &r.ultimate, 2));
        // The chosen generalization must not be the trivial all-root one:
        // the data allow something finer (e.g. age halves + doctor level 1).
        let total_nodes: usize = r.ultimate.iter().map(|g| g.len()).sum();
        assert!(total_nodes > 2, "should be finer than root-only on both columns");
    }

    #[test]
    fn greedy_matches_exhaustive_feasibility() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);

        // Force the greedy path with a tiny exhaustive limit.
        let r = generate_ultimate_nodes(&table, &ctxs, 2, SelectionStrategy::SpecificityLoss, 1)
            .unwrap();
        assert_eq!(r.mode, SearchMode::Greedy);
        assert!(r.satisfied);
        assert!(satisfies(&table, &[("age", &age_tree), ("doctor", &doctor_tree)], &r.ultimate, 2));
        // Ultimate nodes stay within the usage metrics.
        for (g, ctx) in r.ultimate.iter().zip(&ctxs) {
            assert!(g.is_at_or_below(ctx.tree, ctx.maximal).unwrap());
        }
    }

    #[test]
    fn full_info_loss_selection_also_works() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);
        for limit in [1usize, 10_000] {
            let r =
                generate_ultimate_nodes(&table, &ctxs, 2, SelectionStrategy::FullInfoLoss, limit)
                    .unwrap();
            assert!(r.satisfied, "limit {limit}");
            assert!(satisfies(
                &table,
                &[("age", &age_tree), ("doctor", &doctor_tree)],
                &r.ultimate,
                2
            ));
        }
    }

    #[test]
    fn unbinnable_data_reports_unsatisfied() {
        let (table, age_tree, doctor_tree) = two_column_table();
        // Usage metrics forbid any generalization (maximal = leaves), so
        // k = 2 over the combination cannot be met.
        let age_leaves = GeneralizationSet::all_leaves(&age_tree);
        let doc_leaves = GeneralizationSet::all_leaves(&doctor_tree);
        let ctxs =
            contexts(&age_tree, &doctor_tree, &age_leaves, &age_leaves, &doc_leaves, &doc_leaves);
        for limit in [1usize, 10_000] {
            let r = generate_ultimate_nodes(
                &table,
                &ctxs,
                2,
                SelectionStrategy::SpecificityLoss,
                limit,
            )
            .unwrap();
            assert!(!r.satisfied, "limit {limit}");
            assert!(!r.warnings.is_empty());
        }
    }

    #[test]
    fn k_one_keeps_the_minimal_generalization() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);
        let r =
            generate_ultimate_nodes(&table, &ctxs, 1, SelectionStrategy::SpecificityLoss, 10_000)
                .unwrap();
        assert!(r.satisfied);
        // With k=1 nothing needs generalizing, so the minimal (all-leaves)
        // generalization is optimal under both scores.
        assert_eq!(r.ultimate[0], age_min);
        assert_eq!(r.ultimate[1], doc_min);
    }

    #[test]
    fn empty_column_list_is_trivially_satisfied() {
        let (table, _, _) = two_column_table();
        let r = generate_ultimate_nodes(&table, &[], 5, SelectionStrategy::SpecificityLoss, 10)
            .unwrap();
        assert!(r.satisfied);
        assert!(r.ultimate.is_empty());
    }

    #[test]
    fn k_zero_rejected() {
        let (table, age_tree, doctor_tree) = two_column_table();
        let age_min = GeneralizationSet::all_leaves(&age_tree);
        let age_max = GeneralizationSet::root_only(&age_tree);
        let doc_min = GeneralizationSet::all_leaves(&doctor_tree);
        let doc_max = GeneralizationSet::root_only(&doctor_tree);
        let ctxs = contexts(&age_tree, &doctor_tree, &age_min, &age_max, &doc_min, &doc_max);
        assert!(matches!(
            generate_ultimate_nodes(&table, &ctxs, 0, SelectionStrategy::SpecificityLoss, 10),
            Err(BinningError::InvalidK)
        ));
    }
}

//! Off-line enforcement of usage metrics → maximal generalization nodes
//! (§4.1 of the paper).
//!
//! The usage metrics bound the information loss each column may suffer
//! (Eq. 4). Instead of re-checking the bounds after every binning step, the
//! paper enforces them *off-line*, once, by computing for every domain
//! hierarchy tree the set of **maximal generalization nodes**: a valid
//! generalization in which each node is the highest node its leaves may be
//! generalized to without violating the bounds. Binning then simply never
//! climbs above those nodes.
//!
//! Two entry points are provided:
//!
//! * [`maximal_nodes_for_bound`] — derive the maximal nodes from an
//!   information-loss bound, top-down: a node becomes maximal if generalizing
//!   *only its own subtree* (all other leaves kept specific) stays within the
//!   column bound; otherwise its children are examined. This is the
//!   per-subtree reading of "each being the highest node … under the usage
//!   metrics".
//! * [`maximal_nodes_at_depth`] — state the maximal nodes directly as "no
//!   value may be generalized above depth d", the simplification the paper's
//!   own experiments use ("a set of maximal generalization nodes is directly
//!   given to each column as usage metrics", §7).

use crate::error::BinningError;
use medshield_dht::{DomainHierarchyTree, GeneralizationSet, NodeId};
use medshield_metrics::info_loss::{column_info_loss, ColumnGeneralization};
use medshield_relation::Table;

/// Maximal generalization nodes for `column` such that generalizing any
/// single maximal node's subtree keeps the column's information loss within
/// `bound` (Eq. 1 / Eq. 2 evaluated against `table`).
pub fn maximal_nodes_for_bound(
    table: &Table,
    column: &str,
    tree: &DomainHierarchyTree,
    bound: f64,
) -> Result<GeneralizationSet, BinningError> {
    let mut chosen: Vec<NodeId> = Vec::new();
    let mut stack = vec![tree.root()];
    while let Some(node) = stack.pop() {
        if tree.node(node)?.is_leaf() {
            // A leaf is always admissible (zero loss).
            chosen.push(node);
            continue;
        }
        if subtree_loss_within_bound(table, column, tree, node, bound)? {
            chosen.push(node);
        } else {
            for &c in tree.children(node)? {
                stack.push(c);
            }
        }
    }
    GeneralizationSet::new(tree, chosen).map_err(BinningError::Dht)
}

/// The loss of the generalization that maps the leaves under `node` to `node`
/// and keeps every other leaf fully specific. Returns whether it is within
/// `bound`.
fn subtree_loss_within_bound(
    table: &Table,
    column: &str,
    tree: &DomainHierarchyTree,
    node: NodeId,
    bound: f64,
) -> Result<bool, BinningError> {
    // Build the probe generalization: `node` plus every leaf outside it.
    let inside: std::collections::HashSet<NodeId> = tree.leaves_under(node)?.into_iter().collect();
    let mut nodes: Vec<NodeId> =
        tree.leaves().into_iter().filter(|l| !inside.contains(l)).collect();
    nodes.push(node);
    let probe = GeneralizationSet::new(tree, nodes).map_err(BinningError::Dht)?;
    let loss =
        column_info_loss(table, &ColumnGeneralization { column, tree, generalization: &probe })?;
    Ok(loss <= bound + 1e-9)
}

/// Maximal generalization nodes stated directly as a depth cap: values may be
/// generalized at most up to the nodes at `depth` (leaves shallower than
/// `depth` stay themselves).
pub fn maximal_nodes_at_depth(tree: &DomainHierarchyTree, depth: usize) -> GeneralizationSet {
    GeneralizationSet::at_depth(tree, depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_dht::builder::{numeric_binary_tree, CategoricalNodeSpec};
    use medshield_relation::{ColumnDef, ColumnRole, Schema, Value};

    fn role_tree() -> DomainHierarchyTree {
        CategoricalNodeSpec::internal(
            "Person",
            vec![
                CategoricalNodeSpec::internal(
                    "Doctor",
                    vec![
                        CategoricalNodeSpec::leaf("Surgeon"),
                        CategoricalNodeSpec::leaf("Physician"),
                    ],
                ),
                CategoricalNodeSpec::internal(
                    "Paramedic",
                    vec![
                        CategoricalNodeSpec::leaf("Pharmacist"),
                        CategoricalNodeSpec::leaf("Nurse"),
                        CategoricalNodeSpec::leaf("Consultant"),
                    ],
                ),
            ],
        )
        .build("role")
        .unwrap()
    }

    fn role_table(values: &[&str]) -> Table {
        let schema =
            Schema::new(vec![ColumnDef::new("role", ColumnRole::QuasiCategorical)]).unwrap();
        let mut t = Table::new(schema);
        for v in values {
            t.insert(vec![Value::text(*v)]).unwrap();
        }
        t
    }

    #[test]
    fn tight_bound_keeps_leaves() {
        let tree = role_tree();
        let table = role_table(&["Surgeon", "Nurse", "Pharmacist", "Physician"]);
        let g = maximal_nodes_for_bound(&table, "role", &tree, 0.0).unwrap();
        assert_eq!(g, GeneralizationSet::all_leaves(&tree));
    }

    #[test]
    fn loose_bound_allows_the_root() {
        let tree = role_tree();
        let table = role_table(&["Surgeon", "Nurse", "Pharmacist", "Physician"]);
        let g = maximal_nodes_for_bound(&table, "role", &tree, 1.0).unwrap();
        assert_eq!(g, GeneralizationSet::root_only(&tree));
    }

    #[test]
    fn intermediate_bound_stops_mid_tree() {
        let tree = role_tree();
        // All mass on the Doctor side: generalizing Doctor's subtree costs
        // (4·1/5)/4 = 0.2; generalizing the root costs 0.8.
        let table = role_table(&["Surgeon", "Surgeon", "Physician", "Physician"]);
        let g = maximal_nodes_for_bound(&table, "role", &tree, 0.3).unwrap();
        let doctor = tree.node_by_label("Doctor").unwrap();
        let paramedic = tree.node_by_label("Paramedic").unwrap();
        assert!(g.contains(doctor));
        // The Paramedic subtree holds no records, so its probe loss is 0 and
        // it may be generalized wholesale.
        assert!(g.contains(paramedic));
        assert!(!g.contains(tree.root()));
    }

    #[test]
    fn numeric_bound_behaviour() {
        let tree = numeric_binary_tree("age", &[(0, 25), (25, 50), (50, 75), (75, 100)]).unwrap();
        let schema = Schema::new(vec![ColumnDef::new("age", ColumnRole::QuasiNumeric)]).unwrap();
        let mut table = Table::new(schema);
        for v in [10, 30, 60, 90] {
            table.insert(vec![Value::int(v)]).unwrap();
        }
        // Bound 0.30: a leaf costs 0.25 (within), a half-domain node costs
        // (2·0.5 + 2·0.25)/4 = 0.375 as a probe (outside) → maximal nodes are
        // the leaves... but note the probe for [0,50) is
        // (2·0.5 + 2·0.25)/4 = 0.375 > 0.30, so we descend to leaves.
        let g = maximal_nodes_for_bound(&table, "age", &tree, 0.30).unwrap();
        assert_eq!(g.len(), 4);
        // Bound 0.40 admits the half-domain nodes but not the root
        // (root probe = 1.0).
        let g = maximal_nodes_for_bound(&table, "age", &tree, 0.40).unwrap();
        assert_eq!(g.len(), 2);
        assert!(!g.contains(tree.root()));
    }

    #[test]
    fn depth_based_metrics() {
        let tree = role_tree();
        let g0 = maximal_nodes_at_depth(&tree, 0);
        assert_eq!(g0, GeneralizationSet::root_only(&tree));
        let g1 = maximal_nodes_at_depth(&tree, 1);
        assert_eq!(g1.len(), 2);
        let g9 = maximal_nodes_at_depth(&tree, 9);
        assert_eq!(g9, GeneralizationSet::all_leaves(&tree));
    }

    #[test]
    fn result_is_always_a_valid_generalization() {
        let tree = role_tree();
        let table = role_table(&["Surgeon", "Nurse", "Nurse", "Consultant", "Pharmacist"]);
        for bound in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
            let g = maximal_nodes_for_bound(&table, "role", &tree, bound).unwrap();
            assert!(GeneralizationSet::new(&tree, g.nodes().to_vec()).is_ok(), "bound {bound}");
        }
    }
}

//! Precomputed state for the multi-attribute binning search.
//!
//! The exhaustive `GenUltiNd` search (Fig. 7) scores every combination of
//! allowable per-column generalizations. Naively each candidate re-derives,
//! per column, the leaf→covering-node map and the column score — work that
//! depends only on *(column, option)*, not on the candidate as a whole. A
//! [`SearchPlan`] hoists all of it out of the per-candidate loop:
//!
//! * `TableLeaves` — per column, every row's leaf node compacted to a dense
//!   index `0..L` (L = distinct occurring leaves), shared by both search
//!   modes and by mono-attribute binning's leaf counting;
//! * per *(column, option)*: the covering map as a dense `Vec<NodeId>` over
//!   the compact leaf indices, and the option's selection score, each
//!   computed **once** instead of once per candidate;
//! * per column: a `u64` mixed-radix stride so a candidate's bin key for a
//!   row packs into a single integer instead of a heap-allocated `Vec`.
//!
//! With the plan in place, evaluating one candidate is a tight loop over the
//! rows (dense lookups + integer arithmetic) plus a hash-map count — pure,
//! immutable-input work that [`crate::multi`] shards across worker threads.

use crate::config::SelectionStrategy;
use crate::error::BinningError;
use crate::multi::ColumnContext;
use medshield_dht::{DhtKind, DomainHierarchyTree, GeneralizationSet, NodeId};
use medshield_relation::{ColumnData, Table, Value};
use std::collections::HashMap;

/// Per-column leaf structure of the table: each row's leaf as a dense index
/// into the column's occurring-leaf list, plus per-leaf entry counts.
#[derive(Debug, Clone)]
pub(crate) struct TableLeaves {
    /// Per column: the distinct leaves that occur in the data, in first-seen
    /// row order (the dense index space).
    pub leaves: Vec<Vec<NodeId>>,
    /// Per column: every row's leaf as an index into `leaves[column]`.
    pub row_leaf_ix: Vec<Vec<u32>>,
    /// Per column: entries per occurring leaf, indexed like `leaves[column]`.
    pub leaf_entry_counts: Vec<Vec<usize>>,
}

/// One column's resolved leaf structure: the distinct occurring leaves (the
/// dense index space), each row's leaf as a dense index, and entries per
/// leaf. Shared by mono-attribute binning (which only needs the counts) and
/// the multi-attribute search.
#[derive(Debug, Clone)]
pub(crate) struct ColumnLeaves {
    /// Distinct occurring leaves, in first-seen row order.
    pub leaves: Vec<NodeId>,
    /// Every row's leaf as an index into `leaves`.
    pub row_leaf_ix: Vec<u32>,
    /// Entries per occurring leaf, indexed like `leaves`.
    pub entry_counts: Vec<usize>,
}

/// The dense index of `leaf`, allocating a new slot in first-seen order.
/// Distinct values can share a leaf (e.g. 10 and 12 both fall in [0,25)),
/// so the dense index space dedupes by leaf.
fn dense_leaf_ix(
    leaf: NodeId,
    leaf_memo: &mut HashMap<NodeId, u32>,
    leaves: &mut Vec<NodeId>,
    entry_counts: &mut Vec<usize>,
) -> u32 {
    *leaf_memo.entry(leaf).or_insert_with(|| {
        leaves.push(leaf);
        entry_counts.push(0);
        (leaves.len() - 1) as u32
    })
}

/// Resolve every row of `column` to its leaf node, reading the typed column
/// storage directly: dictionary columns resolve each *code* once (the
/// per-row work is a vector lookup), integer columns memoize per distinct
/// `i64`. The dense index space is allocated in first-seen row order, so the
/// result is identical to a row-by-row resolution.
pub(crate) fn resolve_column_leaves(
    table: &Table,
    column: &str,
    tree: &DomainHierarchyTree,
) -> Result<ColumnLeaves, BinningError> {
    let col = table.schema().index_of(column)?;
    let mut leaf_memo: HashMap<NodeId, u32> = HashMap::new();
    let mut leaves: Vec<NodeId> = Vec::new();
    let mut entry_counts: Vec<usize> = Vec::new();
    let mut row_leaf_ix: Vec<u32> = Vec::with_capacity(table.len());
    match table.columns()[col].data() {
        ColumnData::Int(values) => {
            let mut value_memo: HashMap<i64, u32> = HashMap::new();
            for &v in values {
                let ix = match value_memo.get(&v) {
                    Some(&ix) => ix,
                    None => {
                        let leaf =
                            tree.leaf_for_value(&Value::Int(v)).map_err(BinningError::Dht)?;
                        let ix =
                            dense_leaf_ix(leaf, &mut leaf_memo, &mut leaves, &mut entry_counts);
                        value_memo.insert(v, ix);
                        ix
                    }
                };
                entry_counts[ix as usize] += 1;
                row_leaf_ix.push(ix);
            }
        }
        ColumnData::Dict { dict, codes } => {
            // Lazily resolve codes as rows reference them: stale dictionary
            // entries (never referenced) must not hit `leaf_for_value`, and
            // lazy resolution preserves the first-seen dense ordering.
            let mut per_code: Vec<Option<u32>> = vec![None; dict.len()];
            for &code in codes {
                let ix = match per_code[code as usize] {
                    Some(ix) => ix,
                    None => {
                        let leaf =
                            tree.leaf_for_value(&dict[code as usize]).map_err(BinningError::Dht)?;
                        let ix =
                            dense_leaf_ix(leaf, &mut leaf_memo, &mut leaves, &mut entry_counts);
                        per_code[code as usize] = Some(ix);
                        ix
                    }
                };
                entry_counts[ix as usize] += 1;
                row_leaf_ix.push(ix);
            }
        }
    }
    Ok(ColumnLeaves { leaves, row_leaf_ix, entry_counts })
}

impl TableLeaves {
    /// Resolve every row of every column to its leaf node.
    pub fn build(table: &Table, columns: &[ColumnContext<'_>]) -> Result<Self, BinningError> {
        let mut leaves = Vec::with_capacity(columns.len());
        let mut row_leaf_ix = Vec::with_capacity(columns.len());
        let mut leaf_entry_counts = Vec::with_capacity(columns.len());
        for c in columns {
            let col = resolve_column_leaves(table, c.column, c.tree)?;
            leaves.push(col.leaves);
            row_leaf_ix.push(col.row_leaf_ix);
            leaf_entry_counts.push(col.entry_counts);
        }
        Ok(TableLeaves { leaves, row_leaf_ix, leaf_entry_counts })
    }

    /// Number of rows (all columns cover the same rows).
    pub fn rows(&self) -> usize {
        self.row_leaf_ix.first().map(std::vec::Vec::len).unwrap_or(0)
    }

    /// Entries per occurring leaf of one column, as a node-keyed map (the
    /// shape mono-attribute binning and the greedy search consume).
    pub fn leaf_count_map(&self, column: usize) -> HashMap<NodeId, usize> {
        self.leaves[column]
            .iter()
            .zip(&self.leaf_entry_counts[column])
            .map(|(&l, &n)| (l, n))
            .collect()
    }
}

/// One column's precomputed candidate options.
#[derive(Debug, Clone)]
pub(crate) struct ColumnPlan {
    /// The allowable generalizations between the column's minimal and maximal
    /// nodes, in the deterministic `enumerate_between` order.
    pub options: Vec<GeneralizationSet>,
    /// Per option: covering node of each occurring leaf, indexed by the
    /// column's dense leaf index.
    pub covers: Vec<Vec<NodeId>>,
    /// Per option: each occurring leaf's covering bin as a dense index
    /// `0..bin_counts[option]` (bins numbered in first-seen leaf order), so a
    /// candidate's row keys pack into a scratch-array slot instead of a hash
    /// map entry.
    pub bin_ix: Vec<Vec<u32>>,
    /// Per option: number of distinct covering bins over the occurring
    /// leaves.
    pub bin_counts: Vec<usize>,
    /// Per option: the column's selection score (lower is better).
    pub scores: Vec<f64>,
}

/// Everything the exhaustive search needs, computed once per run.
///
/// Per-column option lists, memoized covering maps and score tables are
/// hoisted out of the per-candidate loop; candidates are then scored by a
/// linear index into the mixed-radix product of the option lists, which is
/// what makes the candidate space trivially shardable across worker threads
/// (see [`crate::multi::generate_ultimate_nodes`]).
#[derive(Debug, Clone)]
pub struct SearchPlan {
    pub(crate) columns: Vec<ColumnPlan>,
    /// Number of options per column (the mixed radices, column 0 fastest).
    pub(crate) radices: Vec<usize>,
    /// Total number of candidates (product of the radices).
    pub(crate) total: usize,
    /// Per column: multiplier packing a covering `NodeId` into the `u64` bin
    /// key (the running product of `node_count` of the preceding columns).
    pub(crate) key_strides: Vec<u64>,
    /// True when the per-column covering node ids fit the packed `u64` key;
    /// the search falls back to vector keys otherwise.
    pub(crate) packed_keys: bool,
}

impl SearchPlan {
    /// Enumerate the per-column options and precompute covering maps and
    /// score tables. `exhaustive_limit` caps each column's enumeration, which
    /// the caller has already checked against the cross-column product.
    pub(crate) fn build(
        columns: &[ColumnContext<'_>],
        leaves: &TableLeaves,
        selection: SelectionStrategy,
        exhaustive_limit: usize,
    ) -> Result<SearchPlan, BinningError> {
        let mut plans = Vec::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            let options = GeneralizationSet::enumerate_between(
                c.tree,
                c.minimal,
                c.maximal,
                exhaustive_limit,
            )
            .map_err(BinningError::Dht)?;
            let mut covers = Vec::with_capacity(options.len());
            let mut bin_ix = Vec::with_capacity(options.len());
            let mut bin_counts = Vec::with_capacity(options.len());
            let mut scores = Vec::with_capacity(options.len());
            for option in &options {
                let mut cover = Vec::with_capacity(leaves.leaves[i].len());
                for &leaf in &leaves.leaves[i] {
                    cover.push(option.covering_node(c.tree, leaf).map_err(BinningError::Dht)?);
                }
                scores.push(column_score(
                    c.tree,
                    option,
                    &leaves.leaf_entry_counts[i],
                    &cover,
                    selection,
                ));
                // Relabel the covering nodes into dense bin indices.
                let mut relabel: HashMap<NodeId, u32> = HashMap::new();
                let mut ix = Vec::with_capacity(cover.len());
                for &node in &cover {
                    let next = relabel.len() as u32;
                    ix.push(*relabel.entry(node).or_insert(next));
                }
                bin_counts.push(relabel.len());
                bin_ix.push(ix);
                covers.push(cover);
            }
            plans.push(ColumnPlan { options, covers, bin_ix, bin_counts, scores });
        }

        let radices: Vec<usize> = plans.iter().map(|p| p.options.len()).collect();
        let mut total: usize = 1;
        for &r in &radices {
            total = total.saturating_mul(r);
        }
        // The packed bin key assigns each column a u64 digit range of size
        // node_count; overflow (astronomically wide schemas) falls back to
        // Vec<NodeId> keys.
        let (key_strides, packed_keys) = match key_strides_for(columns) {
            Some(strides) => (strides, true),
            None => (vec![0; columns.len()], false),
        };
        Ok(SearchPlan { columns: plans, radices, total, key_strides, packed_keys })
    }

    /// Total number of candidate combinations the plan enumerates.
    pub fn total_candidates(&self) -> usize {
        self.total
    }

    /// Decode a linear candidate index into per-column option indices
    /// (column 0 is the fastest-moving digit, matching the sequential
    /// mixed-radix counter).
    pub(crate) fn decode(&self, mut index: usize) -> Vec<usize> {
        let mut digits = Vec::with_capacity(self.radices.len());
        for &r in &self.radices {
            digits.push(index % r);
            index /= r;
        }
        digits
    }

    /// Advance a digit vector to the next candidate (wrapping at the end).
    pub(crate) fn advance(&self, digits: &mut [usize]) {
        for (d, &r) in digits.iter_mut().zip(&self.radices) {
            *d += 1;
            if *d < r {
                return;
            }
            *d = 0;
        }
    }

    /// Sum of the per-column scores of one candidate.
    pub(crate) fn candidate_score(&self, digits: &[usize]) -> f64 {
        self.columns.iter().zip(digits).map(|(c, &d)| c.scores[d]).sum()
    }
}

/// Per-column `u64` strides for packing one row's covering nodes into a
/// single integer bin key (column *i*'s digit range is its tree's node
/// count); `None` when the combined ranges overflow `u64`, in which case the
/// search falls back to vector keys.
pub(crate) fn key_strides_for(columns: &[ColumnContext<'_>]) -> Option<Vec<u64>> {
    let mut strides = Vec::with_capacity(columns.len());
    let mut stride: u64 = 1;
    for c in columns {
        strides.push(stride);
        stride = stride.checked_mul(c.tree.node_count() as u64)?;
    }
    Some(strides)
}

/// Score of one column's generalization (lower is better). Specificity loss
/// ignores the data distribution; full information loss is Eq. (1)/(2)
/// computed from the per-leaf entry counts.
pub(crate) fn column_score(
    tree: &DomainHierarchyTree,
    generalization: &GeneralizationSet,
    leaf_entry_counts: &[usize],
    cover: &[NodeId],
    selection: SelectionStrategy,
) -> f64 {
    match selection {
        SelectionStrategy::SpecificityLoss => generalization.specificity_loss(tree),
        SelectionStrategy::FullInfoLoss => {
            let total: usize = leaf_entry_counts.iter().sum();
            if total == 0 {
                return 0.0;
            }
            // Aggregate entries per covering generalization node.
            let mut per_node: HashMap<NodeId, usize> = HashMap::new();
            for (&c, &n) in cover.iter().zip(leaf_entry_counts) {
                *per_node.entry(c).or_insert(0) += n;
            }
            let loss_sum: f64 = match tree.kind() {
                DhtKind::Categorical => {
                    let s = tree.leaf_count() as f64;
                    per_node
                        .iter()
                        .map(|(&node, &n)| {
                            let si = tree.leaf_count_under(node).unwrap_or(1) as f64;
                            n as f64 * (si - 1.0) / s
                        })
                        .sum()
                }
                DhtKind::Numeric => {
                    let (lo, hi) = tree
                        .node(tree.root())
                        .expect("root exists")
                        .interval
                        .expect("numeric root interval");
                    let span = (hi - lo) as f64;
                    per_node
                        .iter()
                        .map(|(&node, &n)| {
                            let (l, h) = tree
                                .node(node)
                                .expect("node exists")
                                .interval
                                .expect("numeric node interval");
                            n as f64 * ((h - l) as f64) / span
                        })
                        .sum()
                }
            };
            loss_sum / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_dht::builder::numeric_binary_tree;
    use medshield_relation::{ColumnDef, ColumnRole, Schema, Value};

    fn age_fixture() -> (Table, DomainHierarchyTree) {
        let tree = numeric_binary_tree("age", &[(0, 25), (25, 50), (50, 75), (75, 100)]).unwrap();
        let schema = Schema::new(vec![ColumnDef::new("age", ColumnRole::QuasiNumeric)]).unwrap();
        let mut t = Table::new(schema);
        for v in [10, 12, 30, 35, 60, 65, 80, 85] {
            t.insert(vec![Value::int(v)]).unwrap();
        }
        (t, tree)
    }

    fn contexts<'a>(
        tree: &'a DomainHierarchyTree,
        minimal: &'a GeneralizationSet,
        maximal: &'a GeneralizationSet,
    ) -> Vec<ColumnContext<'a>> {
        vec![ColumnContext { column: "age", tree, minimal, maximal }]
    }

    #[test]
    fn table_leaves_compacts_rows_and_counts() {
        let (table, tree) = age_fixture();
        let minimal = GeneralizationSet::all_leaves(&tree);
        let maximal = GeneralizationSet::root_only(&tree);
        let ctxs = contexts(&tree, &minimal, &maximal);
        let leaves = TableLeaves::build(&table, &ctxs).unwrap();
        assert_eq!(leaves.rows(), 8);
        // Four distinct leaves, two entries each.
        assert_eq!(leaves.leaves[0].len(), 4);
        assert_eq!(leaves.leaf_entry_counts[0], vec![2, 2, 2, 2]);
        let map = leaves.leaf_count_map(0);
        assert_eq!(map.len(), 4);
        assert!(map.values().all(|&n| n == 2));
    }

    #[test]
    fn plan_enumerates_options_with_covers_and_scores() {
        let (table, tree) = age_fixture();
        let minimal = GeneralizationSet::all_leaves(&tree);
        let maximal = GeneralizationSet::root_only(&tree);
        let ctxs = contexts(&tree, &minimal, &maximal);
        let leaves = TableLeaves::build(&table, &ctxs).unwrap();
        let plan =
            SearchPlan::build(&ctxs, &leaves, SelectionStrategy::SpecificityLoss, 1000).unwrap();
        // Binary tree over 4 leaves: root, plus the 2×2 combinations of each
        // half kept whole or split into its leaves = 5 options.
        assert_eq!(plan.total_candidates(), 5);
        assert_eq!(plan.radices, vec![5]);
        assert!(plan.packed_keys);
        for (option, (cover, score)) in plan.columns[0]
            .options
            .iter()
            .zip(plan.columns[0].covers.iter().zip(&plan.columns[0].scores))
        {
            assert_eq!(cover.len(), leaves.leaves[0].len());
            // Covering maps agree with the per-leaf covering_node calls.
            for (&leaf, &c) in leaves.leaves[0].iter().zip(cover) {
                assert_eq!(option.covering_node(&tree, leaf).unwrap(), c);
            }
            // Score table matches the direct specificity-loss computation.
            assert!((score - option.specificity_loss(&tree)).abs() < 1e-12);
        }
    }

    /// The Fig. 7 invariant: the search space never descends below the
    /// mono-stage minimal nodes — every enumerated option is a coarsening of
    /// the minimal generalization (minimal ⊑ option ⊑ maximal).
    #[test]
    fn options_never_descend_below_minimal_nodes() {
        let (table, tree) = age_fixture();
        // Minimal from a mono pass at k=2 under root-only metrics.
        let maximal = GeneralizationSet::root_only(&tree);
        let mono = crate::mono::generate_minimal_nodes(
            &table,
            "age",
            &tree,
            &maximal,
            2,
            Default::default(),
        )
        .unwrap();
        let ctxs = contexts(&tree, &mono.minimal, &maximal);
        let leaves = TableLeaves::build(&table, &ctxs).unwrap();
        let plan =
            SearchPlan::build(&ctxs, &leaves, SelectionStrategy::SpecificityLoss, 1000).unwrap();
        assert!(!plan.columns[0].options.is_empty());
        for option in &plan.columns[0].options {
            assert!(
                mono.minimal.is_at_or_below(&tree, option).unwrap(),
                "option descends below the minimal generalization nodes"
            );
            assert!(option.is_at_or_below(&tree, &maximal).unwrap());
        }
    }

    #[test]
    fn decode_and_advance_agree_with_sequential_counting() {
        let (table, tree) = age_fixture();
        let minimal = GeneralizationSet::all_leaves(&tree);
        let maximal = GeneralizationSet::root_only(&tree);
        let ctxs = contexts(&tree, &minimal, &maximal);
        let leaves = TableLeaves::build(&table, &ctxs).unwrap();
        let plan =
            SearchPlan::build(&ctxs, &leaves, SelectionStrategy::SpecificityLoss, 1000).unwrap();
        let mut digits = plan.decode(0);
        for idx in 0..plan.total_candidates() {
            assert_eq!(digits, plan.decode(idx), "index {idx}");
            plan.advance(&mut digits);
        }
    }
}

//! Mono-attribute binning: `GenMinNd` / `SubGMN` (Fig. 5 of the paper).
//!
//! For each quasi-identifying attribute, binning proceeds **downward** from
//! the maximal generalization nodes along the domain hierarchy tree until it
//! reaches the lowest set of nodes that still forms a valid generalization
//! satisfying k-anonymity for that single attribute. Those nodes are the
//! *minimal generalization nodes*.
//!
//! The minimality rationale is configurable ([`MinimalNodeStrategy`]): the
//! paper's simple rule marks a node minimal as soon as *some* child falls
//! below k; the "more aggressive strategy" it sketches lets children that
//! hold no records at all be ignored, descending further.

use crate::config::MinimalNodeStrategy;
use crate::error::BinningError;
use medshield_dht::{DomainHierarchyTree, GeneralizationSet, NodeId};
use medshield_relation::Table;
use std::collections::HashMap;

/// The outcome of mono-attribute binning for one column.
#[derive(Debug, Clone)]
pub struct MonoBinning {
    /// The minimal generalization nodes.
    pub minimal: GeneralizationSet,
    /// Human-readable notes about places where the data were not binnable
    /// within the usage metrics (e.g. a maximal node's whole subtree holds
    /// fewer than k records). Empty when binning went cleanly.
    pub warnings: Vec<String>,
}

/// `GenMinNd(tr, maxgends, tbl, k)`: compute the minimal generalization nodes
/// of `column`, starting downward from `maximal` and requiring every bin of
/// the single attribute to hold at least `k` records.
pub fn generate_minimal_nodes(
    table: &Table,
    column: &str,
    tree: &DomainHierarchyTree,
    maximal: &GeneralizationSet,
    k: usize,
    strategy: MinimalNodeStrategy,
) -> Result<MonoBinning, BinningError> {
    if k == 0 {
        return Err(BinningError::InvalidK);
    }
    let leaf_counts = count_leaves(table, column, tree)?;
    let mut minimal_nodes = Vec::new();
    let mut warnings = Vec::new();

    for &max_node in maximal.nodes() {
        let count = count_under(tree, &leaf_counts, max_node)?;
        if count < k && count > 0 {
            // The paper's SubGMN returns NULL here (the data are not binnable
            // below this node); we keep the maximal node itself so the result
            // is still a valid generalization, and surface a warning. The
            // multi-attribute stage and the k+ε margin deal with the rest.
            warnings.push(format!(
                "column {column}: subtree under maximal node {} holds only {count} < k={k} records",
                tree.node(max_node)?.label
            ));
            minimal_nodes.push(max_node);
            continue;
        }
        sub_gmn(tree, &leaf_counts, max_node, k, strategy, &mut minimal_nodes)?;
    }

    let minimal = GeneralizationSet::new(tree, minimal_nodes).map_err(BinningError::Dht)?;
    Ok(MonoBinning { minimal, warnings })
}

/// `SubGMN`: descend while every child of the current node still satisfies
/// k-anonymity; otherwise the current node is minimal.
fn sub_gmn(
    tree: &DomainHierarchyTree,
    leaf_counts: &HashMap<NodeId, usize>,
    node: NodeId,
    k: usize,
    strategy: MinimalNodeStrategy,
    out: &mut Vec<NodeId>,
) -> Result<(), BinningError> {
    let children = tree.children(node)?;
    if children.is_empty() {
        out.push(node);
        return Ok(());
    }
    let descend_ok = children.iter().all(|&c| {
        let count = count_under(tree, leaf_counts, c).unwrap_or(0);
        count >= k || (strategy == MinimalNodeStrategy::Aggressive && count == 0)
    });
    if !descend_ok {
        out.push(node);
        return Ok(());
    }
    for &child in children {
        let count = count_under(tree, leaf_counts, child)?;
        if count == 0 {
            // Aggressive strategy: an empty subtree stays as a single
            // generalization node (it covers its leaves; there is nothing to
            // re-identify inside it).
            out.push(child);
        } else {
            sub_gmn(tree, leaf_counts, child, k, strategy, out)?;
        }
    }
    Ok(())
}

/// Count, per leaf node, how many entries of `column` map to it (via the
/// shared memoized value→leaf resolution of [`crate::plan`]).
fn count_leaves(
    table: &Table,
    column: &str,
    tree: &DomainHierarchyTree,
) -> Result<HashMap<NodeId, usize>, BinningError> {
    let col = crate::plan::resolve_column_leaves(table, column, tree)?;
    Ok(col.leaves.iter().zip(&col.entry_counts).map(|(&l, &n)| (l, n)).collect())
}

/// `NumTuple`: number of entries whose leaf lies under `node`.
fn count_under(
    tree: &DomainHierarchyTree,
    leaf_counts: &HashMap<NodeId, usize>,
    node: NodeId,
) -> Result<usize, BinningError> {
    let mut total = 0usize;
    for leaf in tree.leaves_under(node).map_err(BinningError::Dht)? {
        total += leaf_counts.get(&leaf).copied().unwrap_or(0);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medshield_dht::builder::{numeric_binary_tree, CategoricalNodeSpec};
    use medshield_metrics::anonymity;
    use medshield_relation::{ColumnDef, ColumnRole, Schema, Value};

    fn role_tree() -> DomainHierarchyTree {
        CategoricalNodeSpec::internal(
            "Person",
            vec![
                CategoricalNodeSpec::internal(
                    "Doctor",
                    vec![
                        CategoricalNodeSpec::leaf("Surgeon"),
                        CategoricalNodeSpec::leaf("Physician"),
                    ],
                ),
                CategoricalNodeSpec::internal(
                    "Paramedic",
                    vec![
                        CategoricalNodeSpec::leaf("Pharmacist"),
                        CategoricalNodeSpec::leaf("Nurse"),
                        CategoricalNodeSpec::leaf("Consultant"),
                    ],
                ),
            ],
        )
        .build("role")
        .unwrap()
    }

    fn role_table(counts: &[(&str, usize)]) -> Table {
        let schema =
            Schema::new(vec![ColumnDef::new("role", ColumnRole::QuasiCategorical)]).unwrap();
        let mut t = Table::new(schema);
        for (label, n) in counts {
            for _ in 0..*n {
                t.insert(vec![Value::text(*label)]).unwrap();
            }
        }
        t
    }

    /// Apply a generalization to a fresh copy of the single-column table and
    /// verify per-attribute k-anonymity.
    fn binned_satisfies_k(
        table: &Table,
        tree: &DomainHierarchyTree,
        g: &GeneralizationSet,
        k: usize,
    ) -> bool {
        let mut t = table.snapshot();
        let ids = t.ids();
        for id in ids {
            let v = t.value(id, "role").unwrap().clone();
            let gen = g.generalize_value(tree, &v).unwrap();
            t.set_value(id, "role", gen).unwrap();
        }
        anonymity::column_satisfies_k(&t, "role", k).unwrap()
    }

    #[test]
    fn k1_keeps_leaves() {
        let tree = role_tree();
        let table = role_table(&[("Surgeon", 3), ("Nurse", 2), ("Pharmacist", 1)]);
        let maximal = GeneralizationSet::root_only(&tree);
        let r =
            generate_minimal_nodes(&table, "role", &tree, &maximal, 1, Default::default()).unwrap();
        // Every populated leaf satisfies k=1; unpopulated leaves make their
        // parents stop descending under the conservative rule only if a
        // populated sibling exists... with k=1 any leaf (even empty) has
        // count 0 < 1, so parents of empty leaves stay whole.
        assert!(r.warnings.is_empty());
        assert!(binned_satisfies_k(&table, &tree, &r.minimal, 1));
    }

    #[test]
    fn conservative_stops_when_a_child_is_small() {
        let tree = role_tree();
        // Surgeon 5, Physician 1 → Doctor cannot split under k=3.
        // Pharmacist 4, Nurse 4, Consultant 4 → Paramedic splits fully.
        let table = role_table(&[
            ("Surgeon", 5),
            ("Physician", 1),
            ("Pharmacist", 4),
            ("Nurse", 4),
            ("Consultant", 4),
        ]);
        let maximal = GeneralizationSet::root_only(&tree);
        let r = generate_minimal_nodes(
            &table,
            "role",
            &tree,
            &maximal,
            3,
            MinimalNodeStrategy::Conservative,
        )
        .unwrap();
        let doctor = tree.node_by_label("Doctor").unwrap();
        assert!(r.minimal.contains(doctor), "Doctor should stay whole");
        assert!(r.minimal.contains(tree.node_by_label("Pharmacist").unwrap()));
        assert!(r.minimal.contains(tree.node_by_label("Nurse").unwrap()));
        assert!(r.minimal.contains(tree.node_by_label("Consultant").unwrap()));
        assert!(binned_satisfies_k(&table, &tree, &r.minimal, 3));
    }

    #[test]
    fn aggressive_ignores_empty_children() {
        let tree = role_tree();
        // Pharmacist 6, Nurse 6, Consultant 0. Conservative: Paramedic stays
        // whole (Consultant has 0 < k). Aggressive: descends, keeping the
        // empty Consultant leaf as its own node.
        let table =
            role_table(&[("Pharmacist", 6), ("Nurse", 6), ("Surgeon", 6), ("Physician", 6)]);
        let maximal = GeneralizationSet::root_only(&tree);
        let paramedic = tree.node_by_label("Paramedic").unwrap();

        let conservative = generate_minimal_nodes(
            &table,
            "role",
            &tree,
            &maximal,
            4,
            MinimalNodeStrategy::Conservative,
        )
        .unwrap();
        assert!(conservative.minimal.contains(paramedic));

        let aggressive = generate_minimal_nodes(
            &table,
            "role",
            &tree,
            &maximal,
            4,
            MinimalNodeStrategy::Aggressive,
        )
        .unwrap();
        assert!(!aggressive.minimal.contains(paramedic));
        assert!(aggressive.minimal.contains(tree.node_by_label("Pharmacist").unwrap()));
        assert!(aggressive.minimal.contains(tree.node_by_label("Consultant").unwrap()));
        // Both are valid and both satisfy k.
        assert!(binned_satisfies_k(&table, &tree, &conservative.minimal, 4));
        assert!(binned_satisfies_k(&table, &tree, &aggressive.minimal, 4));
        // Aggressive loses no more information than conservative.
        assert!(aggressive.minimal.len() >= conservative.minimal.len());
    }

    #[test]
    fn binning_respects_maximal_nodes() {
        let tree = role_tree();
        let table = role_table(&[("Surgeon", 1), ("Physician", 1), ("Nurse", 1)]);
        // Usage metrics: may not generalize above {Doctor, Paramedic}.
        let doctor = tree.node_by_label("Doctor").unwrap();
        let paramedic = tree.node_by_label("Paramedic").unwrap();
        let maximal = GeneralizationSet::new(&tree, vec![doctor, paramedic]).unwrap();
        let r =
            generate_minimal_nodes(&table, "role", &tree, &maximal, 2, Default::default()).unwrap();
        // Every minimal node must lie at or below a maximal node.
        assert!(r.minimal.is_at_or_below(&tree, &maximal).unwrap());
        // k=2 with only 1 Nurse under Paramedic → Paramedic stays whole;
        // Doctor has 2 spread across 2 children → children are 1 each → stays whole.
        assert!(r.minimal.contains(doctor));
        assert!(r.minimal.contains(paramedic));
    }

    #[test]
    fn unbinnable_subtree_produces_warning() {
        let tree = role_tree();
        // Only one record under Doctor, k = 5, maximal nodes {Doctor, Paramedic}.
        let table = role_table(&[("Surgeon", 1), ("Nurse", 7)]);
        let doctor = tree.node_by_label("Doctor").unwrap();
        let paramedic = tree.node_by_label("Paramedic").unwrap();
        let maximal = GeneralizationSet::new(&tree, vec![doctor, paramedic]).unwrap();
        let r =
            generate_minimal_nodes(&table, "role", &tree, &maximal, 5, Default::default()).unwrap();
        assert_eq!(r.warnings.len(), 1);
        assert!(r.warnings[0].contains("Doctor"));
        // Result is still a valid generalization bounded by the maximal nodes.
        assert!(r.minimal.is_at_or_below(&tree, &maximal).unwrap());
    }

    #[test]
    fn numeric_tree_downward_binning() {
        let tree = numeric_binary_tree("age", &[(0, 25), (25, 50), (50, 75), (75, 100)]).unwrap();
        let schema = Schema::new(vec![ColumnDef::new("age", ColumnRole::QuasiNumeric)]).unwrap();
        let mut table = Table::new(schema);
        // 5 young, 5 middle-aged, 4 old (75-100), none in [50,75): the left
        // half splits into its leaves; the right half must stay whole because
        // its [50,75) child is empty (< k) under the conservative rule.
        for v in [10, 12, 15, 20, 24, 30, 35, 40, 44, 49, 80, 85, 90, 95] {
            table.insert(vec![Value::int(v)]).unwrap();
        }
        let maximal = GeneralizationSet::root_only(&tree);
        let r =
            generate_minimal_nodes(&table, "age", &tree, &maximal, 4, Default::default()).unwrap();
        let right = tree.node_for_value(&Value::interval(50, 100)).unwrap();
        let left_lo = tree.node_for_value(&Value::interval(0, 25)).unwrap();
        let left_hi = tree.node_for_value(&Value::interval(25, 50)).unwrap();
        assert!(r.minimal.contains(right));
        assert!(r.minimal.contains(left_lo));
        assert!(r.minimal.contains(left_hi));
    }

    #[test]
    fn k_zero_is_rejected() {
        let tree = role_tree();
        let table = role_table(&[("Surgeon", 1)]);
        let maximal = GeneralizationSet::root_only(&tree);
        assert!(matches!(
            generate_minimal_nodes(&table, "role", &tree, &maximal, 0, Default::default()),
            Err(BinningError::InvalidK)
        ));
    }

    #[test]
    fn larger_k_never_yields_more_specific_generalization() {
        let tree = role_tree();
        let table = role_table(&[
            ("Surgeon", 8),
            ("Physician", 6),
            ("Pharmacist", 5),
            ("Nurse", 4),
            ("Consultant", 3),
        ]);
        let maximal = GeneralizationSet::root_only(&tree);
        let mut previous_len = usize::MAX;
        for k in [1, 3, 5, 9, 20, 100] {
            let r = generate_minimal_nodes(&table, "role", &tree, &maximal, k, Default::default())
                .unwrap();
            assert!(
                r.minimal.len() <= previous_len,
                "k={k} produced a more specific generalization than a smaller k"
            );
            previous_len = r.minimal.len();
        }
    }
}

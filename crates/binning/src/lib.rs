//! # medshield-binning
//!
//! The binning agent of the MedShield framework (Bertino et al., ICDE 2005,
//! §4). Binning transforms the quasi-identifying columns of a medical table so
//! that every combination of quasi-identifier values is shared by at least
//! *k* records, while the identifying columns are replaced by their encrypted
//! values to keep records traceable to the data holder.
//!
//! The pipeline has four stages, each in its own module:
//!
//! 1. [`maximal`] — **off-line enforcement of usage metrics**: translate the
//!    information-loss bounds (Eq. 4) into a set of *maximal generalization
//!    nodes* per domain hierarchy tree, the highest nodes any value may be
//!    generalized to without exceeding the allowed loss. The paper's own
//!    experiments skip this translation and state the maximal nodes directly;
//!    [`maximal::maximal_nodes_at_depth`] supports that too.
//! 2. [`mono`] — **mono-attribute binning** (`GenMinNd`, Fig. 5): bin each
//!    attribute individually, *downward* from the maximal generalization
//!    nodes, stopping at the lowest nodes that still satisfy k-anonymity —
//!    the *minimal generalization nodes*.
//! 3. [`multi`] — **multi-attribute binning** (`GenUltiNd`, Fig. 7): because
//!    per-attribute k-anonymity does not imply k-anonymity of the
//!    combination, search the allowable generalizations between the minimal
//!    and maximal nodes of every column for the combination with the least
//!    specificity loss that satisfies k-anonymity — the *ultimate
//!    generalization nodes*. The search runs against a precomputed
//!    `SearchPlan` (crate-internal, see `plan.rs`) and shards its candidate
//!    space over [`BinningConfig::threads`] scoped worker threads with a
//!    deterministic merge, so every thread count produces an identical
//!    outcome.
//! 4. [`binner`] — **Binning** (Fig. 8): encrypt the identifying columns with
//!    `E()` (AES-128) and replace every quasi-identifying value by the value
//!    of its covering ultimate generalization node.
//!
//! The outcome type [`BinningOutcome`] carries the binned table together with
//! the three node sets per column, which is exactly the state the
//! watermarking agent needs (it permutes values between the maximal and
//! ultimate generalization nodes).
//!
//! ```
//! use medshield_binning::{BinningAgent, BinningConfig};
//! use medshield_datagen::{DatasetConfig, MedicalDataset};
//! use std::collections::BTreeMap;
//!
//! let ds = MedicalDataset::generate(&DatasetConfig::small(200));
//! let agent = BinningAgent::new(BinningConfig::with_k(5));
//! // An empty maximal-node map means the usage metrics allow the full trees.
//! let outcome = agent.bin(&ds.table, &ds.trees, &BTreeMap::new()).unwrap();
//! assert!(outcome.satisfied);
//! assert_eq!(outcome.table.len(), 200);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod binner;
pub mod config;
pub mod error;
pub mod maximal;
pub mod mono;
pub mod multi;
pub(crate) mod plan;

pub use binner::{BinningAgent, BinningOutcome, ColumnBinning};
pub use config::{BinningConfig, KAnonymitySpec, MinimalNodeStrategy, SelectionStrategy};
pub use error::BinningError;
pub use multi::SearchMode;

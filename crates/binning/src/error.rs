//! Error type for the binning agent.

use medshield_dht::DhtError;
use medshield_metrics::info_loss::MetricsError;
use medshield_relation::RelationError;

/// Errors raised while binning a table.
#[derive(Debug, Clone, PartialEq)]
pub enum BinningError {
    /// A quasi-identifying column has no domain hierarchy tree configured.
    MissingTree(String),
    /// Underlying relational error.
    Relation(RelationError),
    /// Underlying DHT error.
    Dht(DhtError),
    /// Underlying metrics error.
    Metrics(MetricsError),
    /// No generalization within the usage metrics satisfies the k-anonymity
    /// specification (the data are not binnable under the given bounds).
    NotBinnable {
        /// The k that could not be reached.
        k: usize,
        /// Explanation of where the search got stuck.
        reason: String,
    },
    /// The k-anonymity specification is degenerate (k = 0).
    InvalidK,
    /// The configured worker-thread count is degenerate (0). The search
    /// treats `threads = 1` as strictly sequential; zero workers cannot make
    /// progress.
    InvalidThreads,
}

impl std::fmt::Display for BinningError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinningError::MissingTree(c) => {
                write!(f, "no domain hierarchy tree configured for column {c}")
            }
            BinningError::Relation(e) => write!(f, "relation error: {e}"),
            BinningError::Dht(e) => write!(f, "dht error: {e}"),
            BinningError::Metrics(e) => write!(f, "metrics error: {e}"),
            BinningError::NotBinnable { k, reason } => {
                write!(f, "table cannot be binned to k={k}: {reason}")
            }
            BinningError::InvalidK => write!(f, "k must be at least 1"),
            BinningError::InvalidThreads => {
                write!(f, "the binning search needs at least 1 worker thread")
            }
        }
    }
}

impl std::error::Error for BinningError {}

impl From<RelationError> for BinningError {
    fn from(e: RelationError) -> Self {
        BinningError::Relation(e)
    }
}

impl From<DhtError> for BinningError {
    fn from(e: DhtError) -> Self {
        BinningError::Dht(e)
    }
}

impl From<MetricsError> for BinningError {
    fn from(e: MetricsError) -> Self {
        BinningError::Metrics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(BinningError::MissingTree("age".into()).to_string().contains("age"));
        assert!(BinningError::NotBinnable { k: 7, reason: "x".into() }.to_string().contains("k=7"));
        assert!(BinningError::InvalidK.to_string().contains("at least 1"));
        assert!(BinningError::InvalidThreads.to_string().contains("worker thread"));
    }
}

//! Configuration of the binning agent: the k-anonymity specification and the
//! algorithmic knobs the paper discusses as design alternatives.

use serde::{Deserialize, Serialize};

/// The k-anonymity specification (§3): the parameter k, plus the ε safety
/// margin of §6 used to absorb the (bounded) interference of watermarking
/// with bin sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KAnonymitySpec {
    /// Every bin must contain at least `k` records.
    pub k: usize,
    /// Safety margin: binning actually targets `k + epsilon` so that the
    /// small permutations introduced by watermarking cannot push a bin below
    /// `k`. The paper's conservative rule is ε = (s/S)·|wmd| where `s` is the
    /// largest bin size, `S` the sum of bin sizes and `|wmd|` the number of
    /// embedded bits.
    pub epsilon: usize,
}

impl KAnonymitySpec {
    /// A specification with no safety margin.
    pub fn new(k: usize) -> Self {
        KAnonymitySpec { k, epsilon: 0 }
    }

    /// A specification with an explicit ε margin.
    pub fn with_epsilon(k: usize, epsilon: usize) -> Self {
        KAnonymitySpec { k, epsilon }
    }

    /// The k value binning actually enforces (`k + ε`).
    pub fn effective_k(&self) -> usize {
        self.k + self.epsilon
    }

    /// The paper's conservative ε rule (§6): `ε = (s / S) · |wmd|`, rounded
    /// up, where `s` is the largest bin size, `S` the sum of all bin sizes and
    /// `wmd_len` the total number of embedded bits.
    pub fn conservative_epsilon(largest_bin: usize, total_records: usize, wmd_len: usize) -> usize {
        if total_records == 0 {
            return 0;
        }
        ((largest_bin as f64 / total_records as f64) * wmd_len as f64).ceil() as usize
    }
}

/// How mono-attribute binning decides that a node is a *minimal*
/// generalization node (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MinimalNodeStrategy {
    /// The paper's simple rationale: a node is minimal if it satisfies
    /// k-anonymity but **not all** of its children do. May over-generalize.
    #[default]
    Conservative,
    /// The "more aggressive strategy" sketched in §4.2.1: children that hold
    /// no records at all are treated as (vacuously) satisfying k-anonymity,
    /// so the presence of empty sibling leaves does not force the parent to
    /// stay whole. Descends further, losing less information.
    Aggressive,
}

/// How multi-attribute binning scores candidate generalizations when choosing
/// the ultimate generalization (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// The paper's preferred estimate: specificity loss `(N − Ng)/N` per
    /// tree, summed over columns. Cheap but approximate.
    #[default]
    SpecificityLoss,
    /// Full information loss via Eq. (1)–(3). More accurate, more expensive;
    /// the paper notes it "may incur unacceptable computation penalty".
    FullInfoLoss,
}

/// Complete configuration of the binning agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinningConfig {
    /// The k-anonymity specification.
    pub spec: KAnonymitySpec,
    /// Minimal-node strategy for mono-attribute binning.
    pub minimal_strategy: MinimalNodeStrategy,
    /// Scoring strategy for multi-attribute binning.
    pub selection_strategy: SelectionStrategy,
    /// Upper bound on the number of per-column allowable generalizations that
    /// multi-attribute binning will enumerate exhaustively. When the
    /// cross-column product exceeds this limit, the agent falls back to the
    /// greedy coarsening search (a scalability substitution documented in
    /// DESIGN.md — the paper enumerates exhaustively on its 20k-tuple set).
    pub exhaustive_limit: usize,
    /// Worker threads for the multi-attribute binning search: the exhaustive
    /// candidate space (and the greedy merge frontier) is sharded over this
    /// many scoped threads. `1` is the strictly sequential search; every
    /// thread count produces an identical outcome. `0` is rejected
    /// ([`crate::BinningError::InvalidThreads`]).
    pub threads: usize,
    /// Secret used to derive the AES-128 key that encrypts the identifying
    /// columns (the `E()` of Fig. 8).
    pub encryption_secret: Vec<u8>,
}

impl Default for BinningConfig {
    fn default() -> Self {
        BinningConfig {
            spec: KAnonymitySpec::new(10),
            minimal_strategy: MinimalNodeStrategy::default(),
            selection_strategy: SelectionStrategy::default(),
            exhaustive_limit: 4_096,
            threads: 1,
            encryption_secret: b"medshield-default-binning-secret".to_vec(),
        }
    }
}

impl BinningConfig {
    /// A configuration with the given k and defaults for everything else.
    pub fn with_k(k: usize) -> Self {
        BinningConfig { spec: KAnonymitySpec::new(k), ..Default::default() }
    }

    /// The same configuration with the search sharded over `threads` worker
    /// threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_k_adds_epsilon() {
        assert_eq!(KAnonymitySpec::new(10).effective_k(), 10);
        assert_eq!(KAnonymitySpec::with_epsilon(10, 3).effective_k(), 13);
    }

    #[test]
    fn conservative_epsilon_rule() {
        // s=200, S=20000, |wmd|=100 → 1.0 → ceil 1
        assert_eq!(KAnonymitySpec::conservative_epsilon(200, 20_000, 100), 1);
        // s=2000, S=20000, |wmd|=100 → 10
        assert_eq!(KAnonymitySpec::conservative_epsilon(2_000, 20_000, 100), 10);
        // Fractional result rounds up.
        assert_eq!(KAnonymitySpec::conservative_epsilon(1, 3, 1), 1);
        // Degenerate inputs.
        assert_eq!(KAnonymitySpec::conservative_epsilon(5, 0, 100), 0);
    }

    #[test]
    fn defaults_are_sane() {
        let c = BinningConfig::default();
        assert_eq!(c.spec.k, 10);
        assert_eq!(c.minimal_strategy, MinimalNodeStrategy::Conservative);
        assert_eq!(c.selection_strategy, SelectionStrategy::SpecificityLoss);
        assert!(c.exhaustive_limit > 0);
        assert_eq!(c.threads, 1);
        let c5 = BinningConfig::with_k(5);
        assert_eq!(c5.spec.k, 5);
        assert_eq!(BinningConfig::with_k(5).threads(8).threads, 8);
    }
}

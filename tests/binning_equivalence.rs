//! Equivalence of the sharded multi-attribute binning search across thread
//! counts: for threads {1, 2, 4, 8} the [`BinningAgent`] must produce a
//! byte-identical [`BinningOutcome`] — the binned table *and* the per-column
//! maximal/minimal/ultimate node sets — on clean tables and on attacked
//! ones, in both the exhaustive and the greedy search mode. This pins the
//! parallel refactor to the paper's (sequential) `GenUltiNd` semantics, the
//! same way `engine_equivalence` pins the watermark stages.

use medshield_core::attacks::{Attack, MixedAttack, SubsetAlteration, SubsetDeletion};
use medshield_core::binning::{
    BinningAgent, BinningConfig, BinningError, BinningOutcome, SearchMode,
};
use medshield_core::dht::GeneralizationSet;
use medshield_core::relation::{csv, Table};
use medshield_core::{ProtectionConfig, ProtectionEngine};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use proptest::prelude::*;
use std::collections::BTreeMap;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn dataset(n: usize, seed: u64) -> MedicalDataset {
    MedicalDataset::generate(&DatasetConfig { num_tuples: n, seed, zipf_exponent: 0.8 })
}

fn config(k: usize, exhaustive_limit: usize, threads: usize) -> BinningConfig {
    let mut c = BinningConfig::with_k(k);
    c.exhaustive_limit = exhaustive_limit;
    c.threads = threads;
    c
}

fn root_maximal(ds: &MedicalDataset) -> BTreeMap<String, GeneralizationSet> {
    ds.trees.iter().map(|(n, t)| (n.clone(), GeneralizationSet::root_only(t))).collect()
}

/// The full comparable fingerprint of an outcome: binned-table bytes plus
/// every node set, the satisfied flag, the mode and the warnings.
fn fingerprint(outcome: &BinningOutcome) -> String {
    let mut out = csv::to_csv(&outcome.table);
    for c in &outcome.columns {
        out.push_str(&format!(
            "\n{}|max{:?}|min{:?}|ult{:?}",
            c.column,
            c.maximal.nodes(),
            c.minimal.nodes(),
            c.ultimate.nodes()
        ));
    }
    out.push_str(&format!(
        "\nsatisfied={} mode={:?} warnings={:?}",
        outcome.satisfied, outcome.mode, outcome.warnings
    ));
    out
}

/// Bin `table` at every thread count and assert all outcomes match the
/// 1-thread reference; returns the reference outcome.
fn bin_all_thread_counts(
    ds: &MedicalDataset,
    table: &Table,
    k: usize,
    exhaustive_limit: usize,
) -> BinningOutcome {
    let maximal = root_maximal(ds);
    let reference =
        BinningAgent::new(config(k, exhaustive_limit, 1)).bin(table, &ds.trees, &maximal).unwrap();
    let reference_print = fingerprint(&reference);
    for threads in THREAD_COUNTS {
        let outcome = BinningAgent::new(config(k, exhaustive_limit, threads))
            .bin(table, &ds.trees, &maximal)
            .unwrap();
        assert_eq!(
            fingerprint(&outcome),
            reference_print,
            "{threads}-thread outcome diverged (k={k}, limit={exhaustive_limit})"
        );
    }
    reference
}

/// Exhaustive mode: a large k narrows the minimal→maximal gap enough for the
/// candidate product to fit the limit (the same workload `bench --bin
/// binning` times), and every thread count must reproduce it exactly.
#[test]
fn exhaustive_outcome_identical_across_threads() {
    let ds = dataset(1200, 0x1CDE_2005);
    let reference = bin_all_thread_counts(&ds, &ds.table, 96, 500_000);
    assert_eq!(reference.mode, SearchMode::Exhaustive, "workload must pin the exhaustive search");
    assert!(reference.satisfied);
}

/// Greedy mode (a tiny exhaustive limit forces the fallback): the parallel
/// frontier evaluation must pick the same merge sequence for every thread
/// count.
#[test]
fn greedy_outcome_identical_across_threads() {
    let ds = dataset(1500, 7);
    let reference = bin_all_thread_counts(&ds, &ds.table, 6, 1);
    assert_eq!(reference.mode, SearchMode::Greedy);
    assert!(reference.satisfied);
}

/// The equivalence also holds on attacked input tables — missing and altered
/// tuples change the leaf distribution and therefore the search space, but
/// never the thread-count independence.
#[test]
fn attacked_tables_bin_identically_across_threads() {
    let ds = dataset(1400, 11);
    let engine = ProtectionEngine::sequential(ProtectionConfig::builder().k(4).eta(5).build());
    let release = engine.protect_per_attribute(&ds.table, &ds.trees).unwrap();
    let attack = MixedAttack::new()
        .then(SubsetDeletion::random(0.15, 3))
        .then(SubsetAlteration::new(0.1, 4));
    let attacked = attack.apply(&release.table);
    assert!(attacked.len() < release.table.len());
    // Greedy on the attacked release (its generalized values are leaves of
    // nothing — rebin the *original* schema rows that survived instead).
    let surviving = attack.apply(&ds.table);
    for (k, limit) in [(6usize, 1usize), (96, 500_000)] {
        bin_all_thread_counts(&ds, &surviving, k, limit);
    }
}

/// Boundary: more worker threads than candidate combinations (or than rows)
/// degrades gracefully to the same outcome.
#[test]
fn more_threads_than_candidates_degrades_gracefully() {
    let ds = dataset(400, 5);
    let maximal = root_maximal(&ds);
    let reference =
        BinningAgent::new(config(64, 500_000, 1)).bin(&ds.table, &ds.trees, &maximal).unwrap();
    let wide =
        BinningAgent::new(config(64, 500_000, 1024)).bin(&ds.table, &ds.trees, &maximal).unwrap();
    assert_eq!(fingerprint(&wide), fingerprint(&reference));
}

/// Boundary: zero worker threads is rejected uniformly — by both binning
/// pipelines and by the engine front door (one knob drives both stages, and
/// both entry points agree on the contract).
#[test]
fn zero_threads_rejected_by_binning_and_engine() {
    let ds = dataset(120, 2);
    let maximal = root_maximal(&ds);
    let agent = BinningAgent::new(config(4, 1000, 0));
    assert!(matches!(agent.bin(&ds.table, &ds.trees, &maximal), Err(BinningError::InvalidThreads)));
    assert!(matches!(
        agent.bin_per_attribute(&ds.table, &ds.trees, &maximal),
        Err(BinningError::InvalidThreads)
    ));
    // The engine rejects zero too (it used to clamp silently) and pushes the
    // knob into the binning config on every valid change.
    assert!(matches!(
        ProtectionEngine::new(ProtectionConfig::builder().k(4).build(), 0),
        Err(medshield_core::PipelineError::InvalidThreads)
    ));
    let mut engine = ProtectionEngine::new(ProtectionConfig::builder().k(4).build(), 1).unwrap();
    assert!(matches!(engine.set_threads(0), Err(medshield_core::PipelineError::InvalidThreads)));
    assert_eq!(engine.threads(), 1);
    assert_eq!(engine.config().binning.threads, 1);
    engine.set_threads(8).unwrap();
    assert_eq!(engine.config().binning.threads, 8);
}

/// The Fig. 7 invariant at the outcome level: the ultimate generalization
/// never descends below the mono-stage minimal nodes, and never rises above
/// the maximal nodes, whatever the thread count.
#[test]
fn ultimate_stays_between_minimal_and_maximal() {
    let ds = dataset(900, 13);
    for (k, limit) in [(96usize, 500_000usize), (6, 1)] {
        let reference = bin_all_thread_counts(&ds, &ds.table, k, limit);
        for cb in &reference.columns {
            let tree = &ds.trees[&cb.column];
            assert!(
                cb.minimal.is_at_or_below(tree, &cb.ultimate).unwrap(),
                "column {}: ultimate descended below the minimal nodes (k={k})",
                cb.column
            );
            assert!(cb.ultimate.is_at_or_below(tree, &cb.maximal).unwrap());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Across random tables and k ∈ 2..=8, every thread count produces the
    /// identical outcome, and whenever binning reports success the binned
    /// table genuinely satisfies k-anonymity over the quasi-identifier
    /// combination (checked through `metrics::anonymity`).
    #[test]
    fn binned_output_is_k_anonymous_for_every_thread_count(
        n in 300usize..700,
        seed in 0u64..1000,
        k in 2usize..=8,
    ) {
        let ds = dataset(n, seed);
        let maximal = root_maximal(&ds);
        let reference = BinningAgent::new(config(k, 4096, 1))
            .bin(&ds.table, &ds.trees, &maximal)
            .unwrap();
        let reference_print = fingerprint(&reference);
        let quasi = ds.table.schema().quasi_names();
        for threads in THREAD_COUNTS {
            let outcome = BinningAgent::new(config(k, 4096, threads))
                .bin(&ds.table, &ds.trees, &maximal)
                .unwrap();
            prop_assert!(
                fingerprint(&outcome) == reference_print,
                "threads {}: outcome diverged from the sequential reference", threads
            );
            prop_assert!(outcome.satisfied, "root-bounded binning should satisfy k={}", k);
            prop_assert!(
                medshield_core::metrics::satisfies_k_anonymity(&outcome.table, &quasi, k).unwrap(),
                "threads {}: binned table violates k={}", threads, k
            );
        }
    }
}

//! Tests that pin the paper's headline claims, section by section, on
//! laptop-scale versions of its experimental setup. The full-scale
//! reproductions of the figures live in the bench harness
//! (`crates/bench/src/bin/*`); these tests assert the *shape* of each claim
//! so regressions are caught by `cargo test`.

use medshield_core::attacks::{Attack, SubsetAlteration};
use medshield_core::binning::{BinningAgent, BinningConfig, KAnonymitySpec};
use medshield_core::dht::GeneralizationSet;
use medshield_core::metrics::{mark_loss, table_info_loss, ColumnGeneralization};
use medshield_core::{analytic_interference, measure_interference};
use medshield_core::{ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use std::collections::BTreeMap;

fn dataset(n: usize) -> MedicalDataset {
    MedicalDataset::generate(&DatasetConfig::small(n))
}

/// §4 / Fig. 11: information loss grows with k, multi-attribute binning loses
/// more than mono-attribute binning, and the curve saturates for large k.
#[test]
fn fig11_shape_mono_vs_multi_information_loss() {
    let ds = dataset(2_000);
    let maximal: BTreeMap<String, GeneralizationSet> =
        ds.trees.iter().map(|(n, t)| (n.clone(), GeneralizationSet::at_depth(t, 0))).collect();

    let mut mono_losses = Vec::new();
    let mut multi_losses = Vec::new();
    for k in [5usize, 25, 100] {
        let agent = BinningAgent::new(BinningConfig::with_k(k));
        let outcome = agent.bin(&ds.table, &ds.trees, &maximal).unwrap();
        let mono_cgs: Vec<ColumnGeneralization<'_>> = outcome
            .columns
            .iter()
            .map(|cb| ColumnGeneralization {
                column: &cb.column,
                tree: &ds.trees[&cb.column],
                generalization: &cb.minimal,
            })
            .collect();
        let multi_cgs: Vec<ColumnGeneralization<'_>> = outcome
            .columns
            .iter()
            .map(|cb| ColumnGeneralization {
                column: &cb.column,
                tree: &ds.trees[&cb.column],
                generalization: &cb.ultimate,
            })
            .collect();
        mono_losses.push(table_info_loss(&ds.table, &mono_cgs).unwrap());
        multi_losses.push(table_info_loss(&ds.table, &multi_cgs).unwrap());
    }

    // Multi-attribute binning loses at least as much information as
    // mono-attribute binning at every k (the gap is the paper's main point).
    for (i, (mono, multi)) in mono_losses.iter().zip(multi_losses.iter()).enumerate() {
        assert!(multi + 1e-9 >= *mono, "k index {i}: multi {multi} < mono {mono}");
    }
    // Both curves are non-decreasing in k (within heuristic slack).
    for w in mono_losses.windows(2) {
        assert!(w[1] + 0.05 >= w[0]);
    }
    for w in multi_losses.windows(2) {
        assert!(w[1] + 0.05 >= w[0]);
    }
}

/// §5.3 / Fig. 12(a): mark loss under subset alteration stays moderate (the
/// paper reports ≈30% loss at 70% alteration) and smaller η is at least as
/// resilient.
#[test]
fn fig12a_shape_alteration_resilience_and_eta_tradeoff() {
    let ds = dataset(3_000);
    let mut losses_by_eta = Vec::new();
    for eta in [5u64, 50] {
        let pipeline = ProtectionPipeline::new(
            ProtectionConfig::builder().k(5).eta(eta).mark_len(20).mark_text("fig12a").build(),
        );
        let release = pipeline.protect(&ds.table, &ds.trees).unwrap();
        let attacked = SubsetAlteration::new(0.7, 7).apply(&release.table);
        let detection = pipeline.detect(&attacked, &release.binning.columns, &ds.trees).unwrap();
        losses_by_eta.push(mark_loss(release.mark.bits(), &detection.mark));
    }
    assert!(
        losses_by_eta[0] <= 0.45,
        "70% alteration at eta=5 should lose well under half the mark, lost {}",
        losses_by_eta[0]
    );
    assert!(
        losses_by_eta[0] <= losses_by_eta[1] + 0.1,
        "smaller eta should be at least as resilient: {losses_by_eta:?}"
    );
}

/// §5.1 / Fig. 13: the information loss added by watermarking is minor
/// (the paper reports under 10%) and shrinks as η grows.
#[test]
fn fig13_shape_watermarking_info_loss_is_minor() {
    let ds = dataset(2_000);
    let mut losses = Vec::new();
    for eta in [5u64, 100] {
        let pipeline = ProtectionPipeline::new(
            ProtectionConfig::builder().k(5).eta(eta).mark_text("fig13").build(),
        );
        let release = pipeline.protect(&ds.table, &ds.trees).unwrap();
        let cgs: Vec<ColumnGeneralization<'_>> = release
            .binning
            .columns
            .iter()
            .map(|cb| ColumnGeneralization {
                column: &cb.column,
                tree: &ds.trees[&cb.column],
                generalization: &cb.ultimate,
            })
            .collect();
        let binned_loss = table_info_loss(&ds.table, &cgs).unwrap();
        // Information loss of the watermarked table, measured against the
        // original values with the same generalization sets: the permutations
        // move values between bins but never above the maximal nodes, so the
        // extra loss is the fraction of changed cells, which is small.
        let changed = release.embedding.changed_cells as f64;
        let total_cells = (ds.table.len() * release.binning.columns.len()) as f64;
        let extra = changed / total_cells;
        losses.push((binned_loss, extra));
    }
    for (binned_loss, extra) in &losses {
        assert!(
            *extra <= 0.12,
            "watermarking altered {extra:.3} of the cells (binned loss {binned_loss:.3})"
        );
    }
    // Larger η → fewer selected tuples → less extra distortion.
    assert!(losses[1].1 <= losses[0].1 + 1e-9);
}

/// §6 / Fig. 14: watermarking changes bin sizes but essentially never pushes
/// a bin below k, and the analytic Pr⁻ = Pr⁺ of Lemmas 1–2 holds.
#[test]
fn fig14_shape_watermarking_does_not_break_k_anonymity() {
    let ds = dataset(2_500);
    let mut config = BinningConfig::with_k(10);
    config.spec = KAnonymitySpec::with_epsilon(10, 2);
    let pipeline = ProtectionPipeline::new(
        ProtectionConfig::builder().k(10).epsilon(2).eta(10).mark_text("fig14").build(),
    );
    let release = pipeline.protect(&ds.table, &ds.trees).unwrap();

    let reports = measure_interference(&release.binning.table, &release.table, 10).unwrap();
    assert_eq!(reports.len(), 5);
    let mut any_changed = false;
    for (column, report) in &reports {
        assert!(report.total_bins > 0, "{column}");
        if report.changed_bins > 0 {
            any_changed = true;
        }
        assert_eq!(
            report.below_k, 0,
            "{column}: {} bins fell below k after watermarking",
            report.below_k
        );
    }
    assert!(any_changed, "watermarking should visibly change some bin sizes");

    let analysis = analytic_interference(&release.binning.columns, &ds.trees);
    for a in analysis {
        assert_eq!(a.pr_minus, a.pr_plus, "Lemma 1 vs Lemma 2 for {}", a.column);
    }
}

/// §5.4: the rightful-ownership protocol accepts the owner and rejects an
/// attacker who lacks the binning (decryption) key, without the original
/// table ever being presented.
#[test]
fn ownership_protocol_separates_owner_from_attacker() {
    let ds = dataset(1_500);
    let owner = ProtectionPipeline::new(
        ProtectionConfig::builder()
            .k(5)
            .eta(10)
            .mark_from_statistic(true)
            .encryption_secret(b"owner-enc-key".to_vec())
            .watermark_secret(b"owner-wm-key".to_vec())
            .build(),
    );
    let release = owner.protect(&ds.table, &ds.trees).unwrap();
    let proof = release.ownership.clone().unwrap();
    let detection = owner.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
    let tau = proof.statistic.abs() * 0.05 + 1.0;

    let owner_verdict =
        owner.resolve_ownership(&proof, &release.table, "ssn", &detection.mark, tau, 0.2);
    assert!(owner_verdict.accepted);

    // An attacker with different keys cannot make the statistic check pass.
    let attacker = ProtectionPipeline::new(
        ProtectionConfig::builder()
            .k(5)
            .eta(10)
            .mark_from_statistic(true)
            .encryption_secret(b"attacker-enc-key".to_vec())
            .watermark_secret(b"attacker-wm-key".to_vec())
            .build(),
    );
    let bogus = medshield_core::watermark::ownership::OwnershipProof {
        statistic: proof.statistic + 1.0e9,
        mark_len: 20,
    };
    let attacker_detection =
        attacker.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
    let attacker_verdict = attacker.resolve_ownership(
        &bogus,
        &release.table,
        "ssn",
        &attacker_detection.mark,
        tau,
        0.2,
    );
    assert!(!attacker_verdict.accepted);
}

//! Integration tests of watermark resilience under the paper's attack models
//! (§5.2, §7.2): the statistical shape of Fig. 12 (mark loss grows slowly
//! with attack strength; smaller η is more resilient) and the §5.2 claim that
//! the generalization attack defeats single-level but not hierarchical
//! watermarking.

use medshield_core::attacks::{
    Attack, GeneralizationAttack, MixedAttack, SubsetAddition, SubsetAlteration, SubsetDeletion,
};
use medshield_core::metrics::mark_loss;
use medshield_core::watermark::{Mark, SingleLevelWatermarker, WatermarkConfig, WatermarkKey};
use medshield_core::{ProtectedRelease, ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};

fn protect(n: usize, eta: u64) -> (MedicalDataset, ProtectionPipeline, ProtectedRelease) {
    let ds = MedicalDataset::generate(&DatasetConfig::small(n));
    let pipeline = ProtectionPipeline::new(
        ProtectionConfig::builder()
            .k(5)
            .eta(eta)
            .duplication(4)
            .mark_len(20)
            .mark_text("resilience-owner")
            .build(),
    );
    let release = pipeline.protect(&ds.table, &ds.trees).unwrap();
    (ds, pipeline, release)
}

fn loss_under(
    attack: &dyn Attack,
    ds: &MedicalDataset,
    pipeline: &ProtectionPipeline,
    release: &ProtectedRelease,
) -> f64 {
    let attacked = attack.apply(&release.table);
    let detection = pipeline.detect(&attacked, &release.binning.columns, &ds.trees).unwrap();
    mark_loss(release.mark.bits(), &detection.mark)
}

#[test]
fn moderate_alteration_leaves_most_of_the_mark() {
    let (ds, pipeline, release) = protect(3_000, 10);
    let loss = loss_under(&SubsetAlteration::new(0.3, 1), &ds, &pipeline, &release);
    assert!(loss <= 0.25, "30% alteration should keep ≥75% of the mark, lost {loss}");
}

#[test]
fn alteration_loss_is_monotone_in_attack_strength() {
    let (ds, pipeline, release) = protect(3_000, 10);
    let mut previous = -1.0f64;
    for (i, fraction) in [0.0, 0.4, 0.8].into_iter().enumerate() {
        let loss =
            loss_under(&SubsetAlteration::new(fraction, 42 + i as u64), &ds, &pipeline, &release);
        assert!(
            loss + 0.15 >= previous,
            "loss should generally grow with alteration strength ({previous} → {loss})"
        );
        previous = previous.max(loss);
    }
}

#[test]
fn addition_attack_is_weaker_than_alteration() {
    // Adding tuples never erases embedded bits; it only pollutes the vote.
    let (ds, pipeline, release) = protect(2_500, 10);
    let addition = loss_under(&SubsetAddition::new(0.8, 3), &ds, &pipeline, &release);
    assert!(addition <= 0.3, "80% addition should barely hurt, lost {addition}");
}

#[test]
fn deletion_up_to_half_keeps_most_of_the_mark() {
    let (ds, pipeline, release) = protect(3_000, 10);
    for style in [SubsetDeletion::random(0.5, 5), SubsetDeletion::ranges(0.5, 6, "ssn")] {
        let loss = loss_under(&style, &ds, &pipeline, &release);
        assert!(loss <= 0.3, "{}: lost {loss}", style.describe());
    }
}

#[test]
fn smaller_eta_is_more_resilient_to_deletion() {
    // Fig. 12's second observation: smaller η (more watermarked tuples) gives
    // more redundancy and therefore more resilience.
    let (ds_small, pipeline_small, release_small) = protect(2_500, 5);
    let (ds_large, pipeline_large, release_large) = protect(2_500, 100);
    let attack = SubsetDeletion::random(0.7, 9);
    let loss_small_eta = loss_under(&attack, &ds_small, &pipeline_small, &release_small);
    let loss_large_eta = loss_under(&attack, &ds_large, &pipeline_large, &release_large);
    assert!(
        loss_small_eta <= loss_large_eta + 0.05,
        "eta=5 lost {loss_small_eta}, eta=100 lost {loss_large_eta}"
    );
}

#[test]
fn generalization_attack_defeats_single_level_but_not_hierarchical() {
    let (ds, pipeline, release) = protect(3_000, 8);
    let attack = GeneralizationAttack::new(1, ds.trees.clone());

    // Hierarchical scheme: the mark survives the attack largely intact.
    let hier_loss = loss_under(&attack, &ds, &pipeline, &release);
    assert!(hier_loss <= 0.35, "hierarchical scheme lost {hier_loss} under generalization");

    // Single-level baseline: the same attack wipes the recoverable signal —
    // every watermarked value is pushed above its ultimate node, so detection
    // collects no votes and the recovered mark is unrelated to the original.
    let key = WatermarkKey::from_master(b"single-level-owner", 8);
    let single = SingleLevelWatermarker::new(WatermarkConfig::new(key));
    let mark = Mark::from_bytes(b"single-level-owner", 20);
    let marked = single.embed(&release.binning, &ds.trees, &mark).unwrap();

    let clean = single.detect(&marked, &release.binning.columns, &ds.trees, mark.len()).unwrap();
    let clean_loss = mark_loss(mark.bits(), &clean);
    assert!(clean_loss <= 0.1, "single-level clean detection lost {clean_loss}");

    let attacked = attack.apply(&marked);
    let after = single.detect(&attacked, &release.binning.columns, &ds.trees, mark.len()).unwrap();
    let attacked_loss = mark_loss(mark.bits(), &after);
    assert!(
        attacked_loss >= 0.25,
        "the generalization attack should destroy the single-level mark, lost only {attacked_loss}"
    );
    assert!(
        attacked_loss > clean_loss + 0.1,
        "the attack should clearly degrade the single-level scheme"
    );
    assert!(
        attacked_loss > hier_loss,
        "hierarchical must beat single-level under the generalization attack"
    );
}

#[test]
fn combined_attack_still_leaves_a_recognizable_mark() {
    let (ds, pipeline, release) = protect(3_500, 8);
    let attack = MixedAttack::new()
        .then(SubsetDeletion::random(0.25, 11))
        .then(SubsetAddition::new(0.25, 12))
        .then(SubsetAlteration::new(0.25, 13));
    let loss = loss_under(&attack, &ds, &pipeline, &release);
    // A 20-bit mark with ≤ 35% loss still identifies the owner with high
    // confidence (the paper's Fig. 12 shows ~30% loss at 70% alteration).
    assert!(loss <= 0.35, "combined attack lost {loss}");
}

#[test]
fn attacks_preserve_schema_and_do_not_panic_on_edge_fractions() {
    let (ds, _pipeline, release) = protect(400, 10);
    for attack in [
        Box::new(SubsetAlteration::new(1.0, 1)) as Box<dyn Attack>,
        Box::new(SubsetAddition::new(1.0, 2)),
        Box::new(SubsetDeletion::random(1.0, 3)),
        Box::new(GeneralizationAttack::new(10, ds.trees.clone())),
    ] {
        let attacked = attack.apply(&release.table);
        assert_eq!(attacked.schema(), release.table.schema());
    }
}

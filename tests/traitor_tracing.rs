//! The release/copy model end to end through the facade: per-recipient
//! fingerprints are pairwise distinct, owner-key detection traces a leaked
//! copy back to its recipient under deletion and alteration attacks, and a
//! 2-party collusion still surrenders one of the colluders.

use medshield_core::attacks::{Attack, CollusionAttack, SubsetAlteration, SubsetDeletion};
use medshield_core::relation::{csv, Table};
use medshield_core::watermark::{score_recipients, FingerprintDeriver, HierarchicalWatermarker};
use medshield_core::{ProtectedRelease, ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};

struct Fixture {
    dataset: MedicalDataset,
    owner: ProtectionPipeline,
    release: ProtectedRelease,
    /// `(name, fingerprint, copy)` per recipient.
    copies: Vec<(String, medshield_core::watermark::Mark, Table)>,
}

fn fixture() -> Fixture {
    let dataset = MedicalDataset::generate(&DatasetConfig::small(1_200));
    let owner = ProtectionPipeline::new(
        ProtectionConfig::builder()
            .k(4)
            .eta(5)
            .mark_len(20)
            .watermark_secret(b"facade-owner-key".to_vec())
            .build(),
    );
    let release = owner.protect(&dataset.table, &dataset.trees).unwrap();
    let deriver = FingerprintDeriver::new(&owner.config().watermark.key, owner.config().mark_len);
    let wm = HierarchicalWatermarker::new(owner.config().watermark.clone());
    let copies = ["clinic-a", "clinic-b", "clinic-c"]
        .iter()
        .map(|name| {
            let mark = deriver.derive(name);
            let (copy, report) = wm
                .embed_into(&release.table, &release.binning.columns, &dataset.trees, &mark)
                .unwrap();
            assert!(report.selected_tuples > 0, "copy for {name} embedded nothing");
            ((*name).to_string(), mark, copy)
        })
        .collect();
    Fixture { dataset, owner, release, copies }
}

impl Fixture {
    /// Rank every recipient against `leaked` and return the top name.
    fn trace(&self, leaked: &Table) -> String {
        let report =
            self.owner.detect(leaked, &self.release.binning.columns, &self.dataset.trees).unwrap();
        let ranking = score_recipients(
            &report.mark,
            self.copies.iter().map(|(name, mark, _)| (name.as_str(), mark)),
        );
        assert_eq!(ranking.len(), self.copies.len());
        ranking[0].name.clone()
    }
}

#[test]
fn copies_are_pairwise_distinct_and_clean_leaks_trace_exactly() {
    let fx = fixture();
    for i in 0..fx.copies.len() {
        for j in i + 1..fx.copies.len() {
            assert_ne!(fx.copies[i].1, fx.copies[j].1, "fingerprints must differ");
            assert_ne!(
                csv::to_csv(&fx.copies[i].2),
                csv::to_csv(&fx.copies[j].2),
                "copies for {} and {} must be tellable apart",
                fx.copies[i].0,
                fx.copies[j].0
            );
        }
    }
    for (name, _, copy) in &fx.copies {
        assert_eq!(&fx.trace(copy), name, "clean leak of {name}'s copy must trace to {name}");
    }
}

#[test]
fn deletion_and_alteration_leave_the_true_leaker_on_top() {
    let fx = fixture();
    let (name, _, copy) = &fx.copies[1];
    let deleted = SubsetDeletion::random(0.3, 9).apply(copy);
    assert_eq!(&fx.trace(&deleted), name, "30% deletion must not misdirect the trace");
    let altered = SubsetAlteration::new(0.2, 9).apply(copy);
    assert_eq!(&fx.trace(&altered), name, "20% alteration must not misdirect the trace");
}

#[test]
fn two_party_collusion_surrenders_a_colluder() {
    let fx = fixture();
    let colluded = CollusionAttack::new(vec![fx.copies[2].2.clone()], 7).apply(&fx.copies[1].2);
    let top = fx.trace(&colluded);
    assert!(
        top == fx.copies[1].0 || top == fx.copies[2].0,
        "collusion of {} and {} traced to the innocent {top}",
        fx.copies[1].0,
        fx.copies[2].0
    );
}

//! Equivalence of the chunk-parallel [`ProtectionEngine`] and the sequential
//! [`ProtectionPipeline`]: for thread counts {1, 2, 4, 8} the engine must
//! produce a byte-identical release table, an identical embedding report, and
//! an identical detection report — on clean releases and on attacked ones.
//! This pins the parallel refactor to the paper's (sequential) semantics.

use medshield_core::attacks::{Attack, MixedAttack, SubsetAlteration, SubsetDeletion};
use medshield_core::relation::csv;
use medshield_core::{ProtectionConfig, ProtectionEngine, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config(k: usize, eta: u64, duplication: usize) -> ProtectionConfig {
    ProtectionConfig::builder()
        .k(k)
        .eta(eta)
        .duplication(duplication)
        .mark_text("equivalence-property-owner")
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sequential pipeline output and N-thread engine output are
    /// byte-identical, and both detectors return the same verdict, across
    /// randomized table sizes, seeds and selection rates.
    #[test]
    fn parallel_engine_matches_sequential_pipeline(
        n in 300usize..900,
        seed in 0u64..1000,
        eta in 2u64..12,
    ) {
        let ds = MedicalDataset::generate(&DatasetConfig { num_tuples: n, seed, zipf_exponent: 0.8 });
        let pipeline = ProtectionPipeline::new(config(4, eta, 2));
        let reference = pipeline.protect_per_attribute(&ds.table, &ds.trees).unwrap();
        let reference_csv = csv::to_csv(&reference.table);
        let reference_detection = pipeline
            .detect(&reference.table, &reference.binning.columns, &ds.trees)
            .unwrap();

        for threads in THREAD_COUNTS {
            let engine = ProtectionEngine::new(config(4, eta, 2), threads).unwrap();
            let release = engine.protect_per_attribute(&ds.table, &ds.trees).unwrap();
            prop_assert_eq!(&csv::to_csv(&release.table), &reference_csv);
            prop_assert_eq!(&release.embedding, &reference.embedding);
            prop_assert_eq!(&release.mark, &reference.mark);
            let detection = engine
                .detect(&release.table, &release.binning.columns, &ds.trees)
                .unwrap();
            prop_assert_eq!(&detection, &reference_detection);
        }
    }

    /// The equivalence also holds on attacked releases — the detection-side
    /// sharding must merge votes identically even when tuples are missing or
    /// altered.
    #[test]
    fn parallel_detection_matches_on_attacked_release(
        seed in 0u64..1000,
        delete_percent in 5u64..40,
    ) {
        let delete_fraction = delete_percent as f64 / 100.0;
        let ds = MedicalDataset::generate(&DatasetConfig {
            num_tuples: 800,
            seed,
            zipf_exponent: 0.8,
        });
        let pipeline = ProtectionPipeline::new(config(4, 5, 2));
        let release = pipeline.protect_per_attribute(&ds.table, &ds.trees).unwrap();
        let attack = MixedAttack::new()
            .then(SubsetDeletion::random(delete_fraction, seed))
            .then(SubsetAlteration::new(0.1, seed.wrapping_add(1)));
        let attacked = attack.apply(&release.table);
        let reference = pipeline
            .detect(&attacked, &release.binning.columns, &ds.trees)
            .unwrap();
        for threads in THREAD_COUNTS {
            let engine = ProtectionEngine::new(config(4, 5, 2), threads).unwrap();
            let detection = engine
                .detect(&attacked, &release.binning.columns, &ds.trees)
                .unwrap();
            prop_assert_eq!(&detection, &reference);
        }
    }
}

//! Property-based tests (proptest) over the core invariants of the
//! framework: DHT generalization validity, information-loss bounds,
//! k-anonymity of binning, and watermark round-tripping under randomized
//! configurations.

use medshield_core::binning::{BinningAgent, BinningConfig};
use medshield_core::dht::builder::{numeric_binary_tree, CategoricalNodeSpec};
use medshield_core::dht::GeneralizationSet;
use medshield_core::metrics::{
    column_info_loss, mark_loss, satisfies_k_anonymity, ColumnGeneralization,
};
use medshield_core::relation::{ColumnDef, ColumnRole, Schema, Table, Value};
use medshield_core::{ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A small categorical tree whose fan-out is driven by the strategy.
fn arb_tree() -> impl Strategy<Value = medshield_core::dht::DomainHierarchyTree> {
    (2usize..5, 2usize..5).prop_map(|(groups, leaves_per_group)| {
        let children: Vec<CategoricalNodeSpec> = (0..groups)
            .map(|g| {
                CategoricalNodeSpec::internal(
                    format!("group-{g}"),
                    (0..leaves_per_group)
                        .map(|l| CategoricalNodeSpec::leaf(format!("leaf-{g}-{l}")))
                        .collect(),
                )
            })
            .collect();
        CategoricalNodeSpec::internal("root", children).build("col").unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `at_depth` always produces a valid generalization, and its specificity
    /// loss decreases (more nodes) as the depth grows.
    #[test]
    fn at_depth_is_always_valid(tree in arb_tree(), depth in 0usize..4) {
        let g = GeneralizationSet::at_depth(&tree, depth);
        prop_assert!(GeneralizationSet::new(&tree, g.nodes().to_vec()).is_ok());
        let deeper = GeneralizationSet::at_depth(&tree, depth + 1);
        prop_assert!(deeper.len() >= g.len());
        prop_assert!(deeper.specificity_loss(&tree) <= g.specificity_loss(&tree));
    }

    /// Every enumerated generalization between two valid bounds is itself
    /// valid and within the bounds.
    #[test]
    fn enumeration_stays_within_bounds(tree in arb_tree(), limit in 1usize..40) {
        let lower = GeneralizationSet::all_leaves(&tree);
        let upper = GeneralizationSet::at_depth(&tree, 1);
        let all = GeneralizationSet::enumerate_between(&tree, &lower, &upper, limit).unwrap();
        prop_assert!(!all.is_empty());
        prop_assert!(all.len() <= limit);
        for g in &all {
            prop_assert!(GeneralizationSet::new(&tree, g.nodes().to_vec()).is_ok());
            prop_assert!(g.is_at_or_below(&tree, &upper).unwrap());
            prop_assert!(lower.is_at_or_below(&tree, g).unwrap());
        }
    }

    /// Information loss is always within [0, 1] and equals 0 exactly for the
    /// all-leaves generalization on categorical trees.
    #[test]
    fn info_loss_is_normalized(
        tree in arb_tree(),
        values in prop::collection::vec(0usize..12, 1..60),
        depth in 0usize..3,
    ) {
        let leaves = tree.leaves();
        let schema = Schema::new(vec![ColumnDef::new("col", ColumnRole::QuasiCategorical)]).unwrap();
        let mut table = Table::new(schema);
        for v in &values {
            let leaf = leaves[v % leaves.len()];
            table.insert(vec![tree.node_value(leaf).unwrap()]).unwrap();
        }
        let g = GeneralizationSet::at_depth(&tree, depth);
        let loss = column_info_loss(
            &table,
            &ColumnGeneralization { column: "col", tree: &tree, generalization: &g },
        ).unwrap();
        prop_assert!((0.0..=1.0).contains(&loss), "loss {loss}");
        let zero = column_info_loss(
            &table,
            &ColumnGeneralization {
                column: "col",
                tree: &tree,
                generalization: &GeneralizationSet::all_leaves(&tree),
            },
        ).unwrap();
        prop_assert!(zero.abs() < 1e-12);
    }

    /// Binning a random single-column table always yields per-column
    /// k-anonymity or an explicit "not binnable" outcome, never a silent
    /// violation.
    #[test]
    fn binning_never_silently_violates_k(
        counts in prop::collection::vec(0usize..8, 4..12),
        k in 1usize..6,
    ) {
        let intervals: Vec<(i64, i64)> = (0..counts.len() as i64).map(|i| (i * 10, (i + 1) * 10)).collect();
        let tree = numeric_binary_tree("age", &intervals).unwrap();
        let schema = Schema::new(vec![ColumnDef::new("age", ColumnRole::QuasiNumeric)]).unwrap();
        let mut table = Table::new(schema);
        for (i, &c) in counts.iter().enumerate() {
            for j in 0..c {
                table.insert(vec![Value::int(i as i64 * 10 + (j % 10) as i64)]).unwrap();
            }
        }
        prop_assume!(!table.is_empty());

        let agent = BinningAgent::new(BinningConfig::with_k(k));
        let mut trees = BTreeMap::new();
        trees.insert("age".to_string(), tree);
        let outcome = agent.bin(&table, &trees, &BTreeMap::new()).unwrap();
        if outcome.satisfied {
            prop_assert!(satisfies_k_anonymity(&outcome.table, &["age"], k).unwrap());
        } else {
            prop_assert!(!outcome.warnings.is_empty());
        }
    }

    /// The watermark always round-trips exactly on an untouched release, for
    /// random mark lengths, η and k (kept within the bandwidth the small
    /// test table actually provides).
    #[test]
    fn watermark_roundtrips_for_random_configs(
        mark_len in 4usize..12,
        eta in 2u64..5,
        k in 2usize..4,
        seed in 0u64..1000,
    ) {
        let ds = MedicalDataset::generate(&DatasetConfig { num_tuples: 800, seed, zipf_exponent: 0.8 });
        let pipeline = ProtectionPipeline::new(
            ProtectionConfig::builder()
                .k(k)
                .eta(eta)
                .duplication(4)
                .mark_len(mark_len)
                .mark_text(format!("owner-{seed}"))
                .build(),
        );
        let release = pipeline.protect(&ds.table, &ds.trees).unwrap();
        let detection = pipeline.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
        prop_assert_eq!(mark_loss(release.mark.bits(), &detection.mark), 0.0);
    }
}

//! Smoke tests for the workspace wiring itself: the façade re-exports that
//! every integration test and example depends on, and the round-tripping of
//! the builder defaults. These exist so that a manifest or re-export
//! regression fails with a named test instead of a wall of unrelated
//! compile errors.

use medshield_core::{ProtectionConfig, ProtectionPipeline};

#[test]
fn core_reexports_every_subcrate_path_the_tests_use() {
    // Each statement only has to *resolve*; the values are irrelevant.
    // `medshield_core::metrics` / `::relation` are the paths `end_to_end.rs`
    // and friends import, so they must keep working verbatim.
    let _: fn(&[bool], &[bool]) -> f64 = medshield_core::metrics::mark_loss;
    let _ = medshield_core::relation::Schema::medical_example();
    let _ = medshield_core::crypto::HashAlgorithm::Sha256.digest_len();
    let _ = medshield_core::dht::builder::numeric_binary_tree("x", &[(0, 10), (10, 20)]).unwrap();
    let _ = medshield_core::binning::BinningConfig::with_k(3);
    let _ = medshield_core::watermark::Mark::from_bytes(b"smoke", 8);
    let _ = medshield_core::attacks::SubsetAddition::new(0.1, 1);
    let _ = medshield_core::datagen::DatasetConfig::small(1);
}

#[test]
fn facade_reexports_the_core_crate() {
    // The `medshield` facade is the one-dependency entry point.
    let config = medshield::ProtectionConfig::builder().k(3).build();
    let _pipeline = medshield::ProtectionPipeline::new(config);
    let _ = medshield::core::relation::Schema::medical_example();
}

#[test]
fn protection_config_builder_roundtrips_its_defaults() {
    let defaults = ProtectionConfig::default();
    let built = ProtectionConfig::builder().build();
    assert_eq!(defaults, built, "an empty builder must reproduce ProtectionConfig::default()");
}

#[test]
fn builder_overrides_stick_and_feed_the_pipeline() {
    let config = ProtectionConfig::builder()
        .k(7)
        .eta(13)
        .duplication(2)
        .mark_len(10)
        .mark_text("smoke-owner")
        .build();
    let debug = format!("{config:?}");
    assert!(debug.contains('7'), "k=7 should appear in {debug}");
    let _ = ProtectionPipeline::new(config);
}

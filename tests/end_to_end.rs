//! Cross-crate integration tests: the full protect → outsource → detect
//! lifecycle, exercising datagen, binning, watermarking, metrics and the
//! pipeline together.

use medshield_core::metrics::{
    column_satisfies_k, mark_loss, satisfies_k_anonymity, table_info_loss, ColumnGeneralization,
};
use medshield_core::relation::{csv, ColumnRole, Value};
use medshield_core::{ProtectionConfig, ProtectionPipeline};
use medshield_datagen::{DatasetConfig, MedicalDataset};

fn dataset(n: usize) -> MedicalDataset {
    MedicalDataset::generate(&DatasetConfig::small(n))
}

#[test]
fn full_pipeline_guarantees_privacy_and_ownership() {
    let ds = dataset(2_000);
    let pipeline = ProtectionPipeline::new(
        ProtectionConfig::builder()
            .k(10)
            .epsilon(2)
            .eta(10)
            .duplication(4)
            .mark_len(20)
            .mark_text("integration-test-owner")
            .build(),
    );
    let release = pipeline.protect(&ds.table, &ds.trees).unwrap();

    // Privacy: the binned table is (k+ε)-anonymous over the quasi identifiers,
    // and stays at least k-anonymous per attribute after watermarking.
    let quasi = ds.table.schema().quasi_names();
    assert!(satisfies_k_anonymity(&release.binning.table, &quasi, 12).unwrap());
    for column in &quasi {
        assert!(column_satisfies_k(&release.table, column, 10).unwrap());
    }

    // The identifying column is encrypted: no original SSN appears anywhere.
    let originals: std::collections::HashSet<String> = ds
        .table
        .column_values("ssn")
        .unwrap()
        .into_iter()
        .filter_map(|v| v.as_text().map(str::to_owned))
        .collect();
    for v in release.table.column_values("ssn").unwrap() {
        assert!(!originals.contains(v.as_text().unwrap()));
    }

    // Ownership: the mark round-trips exactly on the untouched release.
    let detection = pipeline.detect(&release.table, &release.binning.columns, &ds.trees).unwrap();
    assert_eq!(detection.mark, release.mark.bits());
}

#[test]
fn information_loss_stays_below_one_and_grows_with_k() {
    let ds = dataset(1_500);
    let mut previous = 0.0f64;
    for k in [2usize, 20, 80] {
        let pipeline = ProtectionPipeline::new(ProtectionConfig::builder().k(k).eta(25).build());
        let release = pipeline.protect(&ds.table, &ds.trees).unwrap();
        let cgs: Vec<ColumnGeneralization<'_>> = release
            .binning
            .columns
            .iter()
            .map(|cb| ColumnGeneralization {
                column: &cb.column,
                tree: &ds.trees[&cb.column],
                generalization: &cb.ultimate,
            })
            .collect();
        let loss = table_info_loss(&ds.table, &cgs).unwrap();
        assert!((0.0..=1.0).contains(&loss), "k={k}: loss {loss} out of range");
        assert!(loss + 0.05 >= previous, "k={k}: loss {loss} dropped sharply from {previous}");
        previous = previous.max(loss);
    }
}

#[test]
fn release_survives_csv_roundtrip_and_detection_still_works() {
    let ds = dataset(1_200);
    let pipeline = ProtectionPipeline::new(
        ProtectionConfig::builder().k(5).eta(8).duplication(3).mark_text("csv-owner").build(),
    );
    let release = pipeline.protect(&ds.table, &ds.trees).unwrap();

    // Outsource as CSV, re-import on the other side.
    let text = csv::to_csv(&release.table);
    let roles = [
        ("ssn", ColumnRole::Identifying),
        ("age", ColumnRole::QuasiNumeric),
        ("zip_code", ColumnRole::QuasiNumeric),
        ("doctor", ColumnRole::QuasiCategorical),
        ("symptom", ColumnRole::QuasiCategorical),
        ("prescription", ColumnRole::QuasiCategorical),
    ];
    let imported = csv::from_csv(&text, &roles).unwrap();
    assert_eq!(imported.len(), release.table.len());

    let detection = pipeline.detect(&imported, &release.binning.columns, &ds.trees).unwrap();
    assert_eq!(
        mark_loss(release.mark.bits(), &detection.mark),
        0.0,
        "CSV round-trip must not destroy the mark"
    );
}

#[test]
fn two_owners_with_different_keys_do_not_interfere() {
    let ds = dataset(1_000);
    let owner_a = ProtectionPipeline::new(
        ProtectionConfig::builder()
            .k(4)
            .eta(10)
            .mark_text("owner-a")
            .watermark_secret(b"key-a".to_vec())
            .build(),
    );
    let owner_b = ProtectionPipeline::new(
        ProtectionConfig::builder()
            .k(4)
            .eta(10)
            .mark_text("owner-b")
            .watermark_secret(b"key-b".to_vec())
            .build(),
    );
    let release_a = owner_a.protect(&ds.table, &ds.trees).unwrap();
    // Owner B's detector on owner A's release must not find owner B's mark.
    let detection =
        owner_b.detect(&release_a.table, &release_a.binning.columns, &ds.trees).unwrap();
    let mark_b = medshield_core::watermark::Mark::from_bytes(b"owner-b", 20);
    assert!(mark_loss(mark_b.bits(), &detection.mark) > 0.2);
}

#[test]
fn binned_values_are_generalizations_of_the_originals() {
    let ds = dataset(800);
    let pipeline = ProtectionPipeline::new(ProtectionConfig::builder().k(8).eta(20).build());
    let release = pipeline.protect(&ds.table, &ds.trees).unwrap();
    // Every binned value must be an ancestor-or-self of the original value's
    // leaf in the column's tree (privacy never *adds* specificity).
    for cb in &release.binning.columns {
        let tree = &ds.trees[&cb.column];
        for (orig, binned) in ds.table.iter().zip(release.binning.table.iter()) {
            let idx = ds.table.schema().index_of(&cb.column).unwrap();
            let leaf = tree.leaf_for_value(&orig.values[idx]).unwrap();
            let bin_node = tree.node_for_value(&binned.values[idx]).unwrap();
            assert!(
                tree.is_ancestor_or_self(bin_node, leaf).unwrap(),
                "column {}: {} is not a generalization of {}",
                cb.column,
                binned.values[idx],
                orig.values[idx]
            );
        }
    }
}

#[test]
fn non_identifying_columns_pass_through_untouched() {
    // Add a non-identifying column and verify the pipeline leaves it alone.
    use medshield_core::relation::{ColumnDef, Schema, Table};
    let schema = Schema::new(vec![
        ColumnDef::new("ssn", ColumnRole::Identifying),
        ColumnDef::new("age", ColumnRole::QuasiNumeric),
        ColumnDef::new("note", ColumnRole::NonIdentifying),
    ])
    .unwrap();
    let mut table = Table::new(schema);
    for i in 0..200i64 {
        table
            .insert(vec![
                Value::text(format!("id-{i}")),
                Value::int(i % 90),
                Value::text(format!("free text {i}")),
            ])
            .unwrap();
    }
    let mut trees = std::collections::BTreeMap::new();
    trees.insert("age".to_string(), medshield_datagen::ontology::age_tree());

    let pipeline = ProtectionPipeline::new(ProtectionConfig::builder().k(5).eta(5).build());
    let release = pipeline.protect(&table, &trees).unwrap();
    for (orig, protected) in table.iter().zip(release.table.iter()) {
        assert_eq!(orig.values[2], protected.values[2], "note column must not change");
    }
}

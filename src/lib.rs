//! # medshield
//!
//! Facade crate for the MedShield workspace — a Rust reproduction of
//! Bertino, Ooi, Yang and Deng, *Privacy and Ownership Preserving of
//! Outsourced Medical Data*, ICDE 2005.
//!
//! Everything lives in the sub-crates (see `docs/ARCHITECTURE.md`); this
//! crate re-exports [`medshield_core`] so that a single dependency pulls in
//! the whole framework, and it anchors the repository-level integration
//! tests (`tests/`) and runnable examples (`examples/`).
//!
//! ```
//! use medshield::core::{ProtectionConfig, ProtectionPipeline};
//!
//! let config = ProtectionConfig::builder().k(4).build();
//! let _pipeline = ProtectionPipeline::new(config);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use medshield_core as core;

pub use medshield_core::{
    ProtectedRelease, ProtectionConfig, ProtectionConfigBuilder, ProtectionPipeline,
};
